// Package pheap implements PJH, the Persistent Java Heap of the paper's
// §3–§4: an NVM-resident space holding Java objects, laid out as
//
//	metadata area | name table | string arena | redo log |
//	mark bitmap | region bitmap | region-top table | Klass segment |
//	data heap (+ scratch region)
//
// All components live on one nvm.Device so the whole heap is a single
// reloadable image. The metadata area stores the address hint, heap size,
// global GC timestamp, and GC-active flag (paper Figure 8); the
// region-top table holds one persisted allocation-top word per data
// region (one cache line each) — the PLAB allocator's replacement for the
// paper's single persisted top; the name table maps string constants to
// Klass entries and root entries; the Klass segment stores place-holder
// Klass records that are re-initialized in place on load so class
// pointers inside objects stay valid; the data heap is carved into
// regions for the crash-consistent compacting collector in package pgc.
package pheap

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/nvm"
	"espresso/internal/telemetry"
	"espresso/internal/telemetry/blackbox"
)

const (
	heapMagic = 0x4553_5052_4845_4150 // "ESPRHEAP"
	// Version 2 added the per-region top table (PLAB allocation) and
	// retired the single global top word. Version 3 added the GC-phase
	// word in what was metadata padding, so v2 images (where that word
	// reads zero = idle) load unchanged and are upgraded in place.
	// Version 4 added the flight-recorder ring (two metadata words, still
	// inside the padded metadata block, plus a carve-out between the Klass
	// segment and the data heap on freshly created heaps); v2/v3 images
	// upgrade in place with a zero-sized ring — their geometry has no room
	// for one — and simply run without a recorder.
	// Version 5 added metadata checksums: a checksum word beside each
	// region-top table value (same cache line), a committed-batch
	// checksum in the redo area's trailing word, and a GC-phase checksum
	// in former metadata padding. All live inside space older formats
	// kept zero or spare, so pre-v5 images upgrade in place: their
	// checksums are stamped from the values as read (detection starts
	// with the upgrade — rot that predates it is indistinguishable from
	// data).
	heapVersion         = 5
	heapVersionChecksum = 5
	heapVersionBlackbox = 4
	heapVersionGCPhase  = 3
	heapVersionPLAB     = 2
)

// GC-phase word values (mGCPhase). The phase word records that a
// concurrent mark was in flight: unlike gcActive — which is set only
// after the mark bitmap is fully persisted and therefore promises a
// resumable compaction — a persisted phase of GCPhaseConcurrentMark with
// gcActive clear means the crash interrupted marking itself. Nothing has
// moved then, so recovery simply clears the word and the next collection
// starts a fresh cycle (STW or concurrent).
const (
	GCPhaseIdle           uint64 = 0
	GCPhaseConcurrentMark uint64 = 1
)

// Metadata field offsets (device-relative). The whole block fits in four
// cache lines at the start of the device. mTopRetired is the slot that
// held the global allocation top before the per-region top table replaced
// it; it is kept zero.
const (
	mMagic         = 0
	mVersion       = 8
	mAddressHint   = 16
	mDeviceSize    = 24
	mTopRetired    = 32
	mGlobalTS      = 40
	mGCActive      = 48
	mNameTabOff    = 56
	mNameTabCap    = 64
	mArenaOff      = 72
	mArenaSize     = 80
	mArenaUsed     = 88
	mRedoOff       = 96
	mRedoSize      = 104
	mMarkBmpOff    = 112
	mMarkBmpSize   = 120
	mRegionBmpOff  = 128
	mRegionBmpSize = 136
	mKsegOff       = 144
	mKsegSize      = 152
	mKsegUsed      = 160
	mDataOff       = 168
	mDataSize      = 176
	mScratchOff    = 184
	mRegionTopOff  = 192
	mRegionTopSize = 200
	mGCPhase       = 208 // v3; zero padding in v2 images, so idle by construction
	mBlackboxOff   = 216 // v4; zero in upgraded pre-v4 images (no ring)
	mBlackboxSize  = 224 // v4; zero = no flight-recorder ring
	mGCPhaseSum    = 232 // v5; checksum over mGCPhase, same cache line as it
	metadataBytes  = 240
)

// Config sizes a new heap. Zero values select defaults.
type Config struct {
	// Name identifies the heap to the external name manager.
	Name string
	// AddressHint is the virtual base address the heap wants to occupy
	// (paper: "the starting virtual address of the whole heap for future
	// heap reloading"). Defaults to layout.DefaultPJHBase.
	AddressHint layout.Ref
	// DataSize is the requested data-heap capacity in bytes; it is rounded
	// up to whole regions and one extra scratch region is added for the
	// compactor. Default 16 MB.
	DataSize int
	// KsegSize caps the Klass segment. Default 1 MB.
	KsegSize int
	// NameTabCap is the name table capacity in entries. Default 4096.
	NameTabCap int
	// ArenaSize caps the name-string arena. Default 256 KB.
	ArenaSize int
	// BlackboxSize sizes the flight-recorder event ring (header + 64-byte
	// records). Default 64 KB (1023 records). The ring is always carved
	// and formatted — recording is enabled separately — so a heap image
	// can be post-mortemed regardless of how the writing process was
	// configured.
	BlackboxSize int
	// Mode and WriteLatency configure the backing nvm.Device.
	Mode         nvm.Mode
	WriteLatency time.Duration
}

func (c *Config) fillDefaults() {
	if c.AddressHint == 0 {
		c.AddressHint = layout.DefaultPJHBase
	}
	if c.DataSize == 0 {
		c.DataSize = 16 << 20
	}
	if c.KsegSize == 0 {
		c.KsegSize = 1 << 20
	}
	if c.NameTabCap == 0 {
		c.NameTabCap = 4096
	}
	if c.ArenaSize == 0 {
		c.ArenaSize = 256 << 10
	}
	if c.BlackboxSize == 0 {
		c.BlackboxSize = 64 << 10
	}
}

// Geometry is the resolved component layout of a heap image.
type Geometry struct {
	NameTabOff, NameTabCap      int
	ArenaOff, ArenaSize         int
	RedoOff, RedoSize           int
	MarkBmpOff, MarkBmpSize     int
	RegionBmpOff, RegionBmpSize int
	RegionTopOff, RegionTopSize int
	KsegOff, KsegSize           int
	BlackboxOff, BlackboxSize   int // flight-recorder ring; size 0 = absent
	DataOff, DataSize           int // includes the scratch region
	ScratchOff                  int
}

// Regions reports the number of data regions, including the scratch
// region.
func (g Geometry) Regions() int { return g.DataSize / layout.RegionSize }

// DataRegions reports the number of allocatable data regions (excluding
// the compactor's scratch region).
func (g Geometry) DataRegions() int { return (g.ScratchOff - g.DataOff) / layout.RegionSize }

// Heap is a loaded PJH instance. Allocation is safe for concurrent use:
// the shared Alloc entry point serializes on the heap's default
// allocator, and NewAllocator hands out per-mutator PLAB contexts that
// bump-allocate lock-free. GC and load/recovery assume the world is
// stopped, as in the JVM.
type Heap struct {
	dev  *nvm.Device
	reg  *klass.Registry
	name string
	base layout.Ref
	geo  Geometry

	// mu serializes heap metadata: the region dispenser, hole list, klass
	// segment appends, name table, and arena. The object fast paths
	// (PLAB bumps, field access) never take it.
	mu        sync.Mutex
	gcActive  atomic.Bool
	gcPhase   atomic.Uint64 // mirror of the persisted GC-phase word
	globalTS  atomic.Uint64
	ksegUsed  int
	arenaUsed int

	// SATB concurrent-marking state (satb.go): the pre-write barrier's
	// activation flag, the snapshotted region tops it filters against,
	// and the registered per-mutator buffers the marker drains.
	satbMu      sync.Mutex
	satbBuffers []*SATBBuffer
	satbDefault *SATBBuffer
	satbActive  atomic.Bool
	satbSnap    []int
	satbDirty   []atomic.Bool

	// Remembered-set delta state (remsetdelta.go): the write-combining
	// reference-store barrier's per-mutator buffers and the sink core
	// installs to receive them at publication points.
	remsetMu      sync.Mutex
	remsetBuffers []*RemsetDeltaBuffer
	remsetDefault [remsetDefaultShards]atomic.Pointer[RemsetDeltaBuffer]
	remsetSink    atomic.Pointer[RemsetSink]

	// markBmpHi is the byte length of the mark bitmap's last persisted
	// used prefix (see PersistMarkBitmapUsed). Volatile: a fresh process
	// starts conservative.
	markBmpHi int

	// layoutEpoch counts the events that can move objects — collection
	// finishes and rebases. Callers holding the safepoint read lock can
	// validate cached object references with one atomic load instead of
	// a locked name-table probe: the epoch cannot change inside their
	// pinned interval.
	layoutEpoch atomic.Uint64

	// collecting guards against overlapping collections of one heap: a
	// second collector starting mid-cycle would clear the bitmap the
	// first is writing and move objects out from under its snapshot.
	// core serializes its GC entry points; this is the in-process
	// defense for direct pgc callers.
	collecting atomic.Bool

	// kmu guards the klass-record address maps, which the allocation and
	// parse fast paths read concurrently with EnsureKlass appends.
	kmu       sync.RWMutex
	segByAddr map[layout.Ref]*klass.Klass
	segByName map[string]layout.Ref

	// regionTops mirrors the persisted region-top table (see alloc.go for
	// the value encoding). Entries are atomic so heap walks can run
	// concurrently with PLAB owners advancing their own region's top.
	regionTops []atomic.Int64

	// Region dispenser state (guarded by mu): regions below frontier have
	// been handed out at some point; freeRegions lists regions below the
	// frontier with bump headroom left (fully free, or partially filled
	// ones returned by Release / left behind by the collector).
	frontier    int
	freeRegions []int

	// Hole recycling: the collector reports the filler-covered gaps below
	// the region tops that it left behind; allocators refill them before
	// claiming new regions. The list is volatile — after a reload it
	// starts empty and is repopulated by the next collection. holeCount
	// lets the allocation fast path skip the lock when no holes exist.
	freeHoles []Hole
	holeCount atomic.Int64

	// Filler klass records, resolved once so gap plugging is lock-free.
	fillerK, fillerArrK       *klass.Klass
	fillerAddr, fillerArrAddr layout.Ref

	// Registered allocators (guarded by mu); retired wholesale at the GC
	// safepoint by PrepareForCollection.
	allocators []*Allocator
	defMu      sync.Mutex // serializes the shared Alloc entry point
	defAlloc   *Allocator

	// tel is the observability domain this heap reports into (nil =
	// telemetry disabled; every record call no-ops). Installed by the
	// embedding runtime before mutators run; allocators created earlier
	// (the default allocator) simply carry nil cells.
	tel *telemetry.Registry

	// fr is the NVM flight recorder (nil = disabled; Append on nil
	// no-ops, so emission sites never branch). Installed once by
	// EnableFlightRecorder before mutators run.
	fr *blackbox.Recorder

	// upgradedFrom records an in-place format upgrade performed by this
	// Load (0 = image was already current), so the embedding runtime can
	// journal it once the recorder is attached.
	upgradedFrom uint64

	// quarantined marks data regions amputated by LoadSalvage (nil on a
	// strict or clean load). Quarantined regions were zeroed and their
	// top lines reset, so the heap itself needs no further guard; the
	// slice exists for the index layer's never-fabricate walk and for
	// reporting.
	quarantined []bool
}

func align(n, a int) int { return (n + a - 1) &^ (a - 1) }

// Create formats a fresh heap on a new device.
func Create(reg *klass.Registry, cfg Config) (*Heap, error) {
	cfg.fillDefaults()
	dataSize := align(cfg.DataSize, layout.RegionSize) + layout.RegionSize // + scratch
	regions := dataSize / layout.RegionSize

	geo := Geometry{NameTabCap: cfg.NameTabCap, ArenaSize: align(cfg.ArenaSize, 64)}
	off := align(metadataBytes, 64)
	geo.NameTabOff = off
	off += cfg.NameTabCap * nameEntryBytes
	geo.ArenaOff = off
	off += geo.ArenaSize
	geo.RedoOff = off
	// The GC finish batch carries every root entry plus one top word per
	// region; size the log for both.
	geo.RedoSize = align(16+(cfg.NameTabCap+regions+8)*16+64, 64)
	off += geo.RedoSize
	geo.MarkBmpOff = off
	geo.MarkBmpSize = align(dataSize/layout.WordSize/8, 64)
	off += geo.MarkBmpSize
	geo.RegionBmpOff = off
	geo.RegionBmpSize = align((regions+7)/8, 64)
	off += geo.RegionBmpSize
	geo.RegionTopOff = off
	geo.RegionTopSize = regions * layout.RegionTopStride
	off += geo.RegionTopSize
	geo.KsegOff = off
	geo.KsegSize = align(cfg.KsegSize, 64)
	off += geo.KsegSize
	geo.BlackboxOff = off
	geo.BlackboxSize = align(cfg.BlackboxSize, 64)
	off += geo.BlackboxSize
	off = align(off, layout.RegionSize)
	geo.DataOff = off
	geo.DataSize = dataSize
	geo.ScratchOff = off + dataSize - layout.RegionSize
	total := off + dataSize

	dev := nvm.New(nvm.Config{Size: total, Mode: cfg.Mode, WriteLatency: cfg.WriteLatency})
	h := &Heap{
		dev: dev, reg: reg, name: cfg.Name, base: cfg.AddressHint, geo: geo,
		regionTops: make([]atomic.Int64, regions),
		segByAddr:  make(map[layout.Ref]*klass.Klass),
		segByName:  make(map[string]layout.Ref),
	}

	dev.WriteU64(mMagic, heapMagic)
	dev.WriteU64(mVersion, heapVersion)
	dev.WriteU64(mAddressHint, uint64(cfg.AddressHint))
	dev.WriteU64(mDeviceSize, uint64(total))
	dev.WriteU64(mTopRetired, 0)
	dev.WriteU64(mGlobalTS, 1)
	dev.WriteU64(mGCActive, 0)
	dev.WriteU64(mNameTabOff, uint64(geo.NameTabOff))
	dev.WriteU64(mNameTabCap, uint64(geo.NameTabCap))
	dev.WriteU64(mArenaOff, uint64(geo.ArenaOff))
	dev.WriteU64(mArenaSize, uint64(geo.ArenaSize))
	dev.WriteU64(mArenaUsed, 0)
	dev.WriteU64(mRedoOff, uint64(geo.RedoOff))
	dev.WriteU64(mRedoSize, uint64(geo.RedoSize))
	dev.WriteU64(mMarkBmpOff, uint64(geo.MarkBmpOff))
	dev.WriteU64(mMarkBmpSize, uint64(geo.MarkBmpSize))
	dev.WriteU64(mRegionBmpOff, uint64(geo.RegionBmpOff))
	dev.WriteU64(mRegionBmpSize, uint64(geo.RegionBmpSize))
	dev.WriteU64(mKsegOff, uint64(geo.KsegOff))
	dev.WriteU64(mKsegSize, uint64(geo.KsegSize))
	dev.WriteU64(mKsegUsed, 0)
	dev.WriteU64(mDataOff, uint64(geo.DataOff))
	dev.WriteU64(mDataSize, uint64(dataSize))
	dev.WriteU64(mScratchOff, uint64(geo.ScratchOff))
	dev.WriteU64(mRegionTopOff, uint64(geo.RegionTopOff))
	dev.WriteU64(mRegionTopSize, uint64(geo.RegionTopSize))
	dev.WriteU64(mGCPhase, GCPhaseIdle)
	dev.WriteU64(mBlackboxOff, uint64(geo.BlackboxOff))
	dev.WriteU64(mBlackboxSize, uint64(geo.BlackboxSize))
	dev.WriteU64(mGCPhaseSum, gcPhaseSum(GCPhaseIdle))
	// The region-top table needs no stamping: all-zero lines are the
	// valid untouched-region state (see regionTopLineValid).
	dev.Flush(0, metadataBytes)
	dev.Fence()
	// Ring header after the metadata that points at it (manifest-first).
	if err := blackbox.Format(dev, geo.BlackboxOff, geo.BlackboxSize); err != nil {
		return nil, err
	}
	h.globalTS.Store(1)

	// Every heap carries the filler classes so allocation gaps parse.
	if _, err := h.EnsureKlass(reg.Filler()); err != nil {
		return nil, err
	}
	if _, err := h.EnsureKlass(reg.FillerArray()); err != nil {
		return nil, err
	}
	h.resolveFillers()
	h.defAlloc = h.NewAllocator()
	return h, nil
}

// Load opens an existing heap image. If the image was mid-GC when it was
// last persisted, the heap reports GCActive()==true and the caller must
// run pgc recovery before using it (core.LoadHeap does). On a clean
// image, half-open PLAB regions — per-region tops strictly inside their
// region — are plugged with fillers and sealed, so the reloaded data heap
// parses region by region exactly up to each persisted top.
//
// Load is strict: any metadata checksum failure is an error. LoadSalvage
// (salvage.go) opens such images by quarantining what cannot be
// repaired.
func Load(dev *nvm.Device, reg *klass.Registry) (*Heap, error) {
	return load(dev, reg, nil)
}

// load is the shared open path. salv == nil selects strict mode;
// otherwise corruption is repaired or quarantined into the report where
// the salvage rules allow.
func load(dev *nvm.Device, reg *klass.Registry, salv *SalvageReport) (*Heap, error) {
	// Unreadable-image checks first: these reject images we cannot even
	// interpret, and apply identically in both modes.
	if dev.Size() < metadataBytes {
		return nil, fmt.Errorf("pheap: image too small")
	}
	if dev.ReadU64(mMagic) != heapMagic {
		return nil, fmt.Errorf("pheap: bad heap magic")
	}
	v := dev.ReadU64(mVersion)
	if v < heapVersionPLAB || v > heapVersion {
		return nil, fmt.Errorf("pheap: unsupported heap version %d", v)
	}
	if sz := dev.ReadU64(mDeviceSize); int(sz) != dev.Size() {
		return nil, fmt.Errorf("pheap: image size %d does not match metadata %d", dev.Size(), sz)
	}
	geo := Geometry{
		NameTabOff: int(dev.ReadU64(mNameTabOff)), NameTabCap: int(dev.ReadU64(mNameTabCap)),
		ArenaOff: int(dev.ReadU64(mArenaOff)), ArenaSize: int(dev.ReadU64(mArenaSize)),
		RedoOff: int(dev.ReadU64(mRedoOff)), RedoSize: int(dev.ReadU64(mRedoSize)),
		MarkBmpOff: int(dev.ReadU64(mMarkBmpOff)), MarkBmpSize: int(dev.ReadU64(mMarkBmpSize)),
		RegionBmpOff: int(dev.ReadU64(mRegionBmpOff)), RegionBmpSize: int(dev.ReadU64(mRegionBmpSize)),
		RegionTopOff: int(dev.ReadU64(mRegionTopOff)), RegionTopSize: int(dev.ReadU64(mRegionTopSize)),
		KsegOff: int(dev.ReadU64(mKsegOff)), KsegSize: int(dev.ReadU64(mKsegSize)),
		BlackboxOff: int(dev.ReadU64(mBlackboxOff)), BlackboxSize: int(dev.ReadU64(mBlackboxSize)),
		DataOff: int(dev.ReadU64(mDataOff)), DataSize: int(dev.ReadU64(mDataSize)),
		ScratchOff: int(dev.ReadU64(mScratchOff)),
	}
	if err := geo.sanity(dev.Size()); err != nil {
		return nil, err
	}
	upgradedFrom := uint64(0)
	if v < heapVersion {
		// In-place upgrade: every word added since v2 lives in what older
		// versions kept as zero metadata padding, so the component
		// geometry is unchanged. v2 gains the GC-phase word (stamped
		// idle); pre-v4 images gain zero-sized flight-recorder ring
		// coordinates — their layout has no ring region, so the recorder
		// simply stays absent. Pre-v5 images gain checksums stamped from
		// the metadata as read.
		if v == heapVersionPLAB {
			dev.WriteU64(mGCPhase, GCPhaseIdle)
		}
		// mBlackboxOff/Size are left as read: genuine pre-v4 images have
		// zero padding there (= no ring), and a forged-downgrade image
		// that physically carries a ring keeps it.
		if v < heapVersionChecksum {
			stampChecksums(dev, geo)
		}
		dev.WriteU64(mVersion, heapVersion)
		dev.Flush(0, metadataBytes)
		dev.Fence()
		upgradedFrom = v
	}
	if p := dev.ReadU64(mGCPhase); p > GCPhaseConcurrentMark || dev.ReadU64(mGCPhaseSum) != gcPhaseSum(p) {
		if salv == nil {
			return nil, fmt.Errorf("pheap: corrupt GC-phase word %d", p)
		}
		// Resetting to idle is always sound: an interrupted concurrent
		// mark is discardable by design, and an interrupted compaction
		// re-announces itself through the gcActive flag regardless of
		// the phase word.
		dev.WriteU64(mGCPhase, GCPhaseIdle)
		dev.WriteU64(mGCPhaseSum, gcPhaseSum(GCPhaseIdle))
		dev.Flush(mGCPhase, 8) // the sum shares the phase word's line
		dev.Fence()
		salv.GCPhaseRepaired = true
	}
	h := &Heap{
		dev: dev, reg: reg,
		base:         layout.Ref(dev.ReadU64(mAddressHint)),
		geo:          geo,
		upgradedFrom: upgradedFrom,
		ksegUsed:     int(dev.ReadU64(mKsegUsed)),
		arenaUsed:    int(dev.ReadU64(mArenaUsed)),
		regionTops:   make([]atomic.Int64, geo.Regions()),
		segByAddr:    make(map[layout.Ref]*klass.Klass),
		segByName:    make(map[string]layout.Ref),
	}
	h.globalTS.Store(dev.ReadU64(mGlobalTS))
	h.gcActive.Store(dev.ReadU64(mGCActive) != 0)
	h.gcPhase.Store(dev.ReadU64(mGCPhase))
	// An earlier process may have persisted mark bits anywhere in the
	// bitmap area; the first persist of this process must cover it all.
	h.markBmpHi = geo.MarkBmpSize
	// Class re-initialization in place: cost ∝ number of Klasses, not
	// objects — the property behind Figure 18's flat UG line.
	if err := h.reinitKlasses(); err != nil {
		return nil, err
	}
	h.resolveFillers()
	// Redo-log state validation: a committed batch must carry its
	// checksum, and the state word must decode. Strict mode errors;
	// salvage discards an unusable batch (see redoValidate for why that
	// is sound in every reachable state).
	if err := h.redoValidate(salv); err != nil {
		return nil, err
	}
	// A committed-but-unapplied GC finish means the collection logically
	// completed; reapplying the redo log is idempotent.
	if h.RedoPending() {
		h.RedoApply()
		h.gcActive.Store(dev.ReadU64(mGCActive) != 0)
	}
	// Region-top checksums, after redo processing so a batch that
	// republished tops has already repaired the lines it covers.
	if err := h.verifyRegionTops(salv); err != nil {
		return nil, err
	}
	// Region recovery: rebuild the volatile mirrors and the dispenser.
	// Mid-collection images keep their raw tops — pgc.Recover rewrites
	// them wholesale — while clean images get half-open PLABs sealed.
	h.rebuildRegionState(!h.gcActive.Load())
	h.defAlloc = h.NewAllocator()
	return h, nil
}

// sanity rejects geometry words that point outside the device — the
// line between "an image we can validate" and "not an image": checksum
// validation itself walks these areas, so they must be in bounds first.
func (g Geometry) sanity(size int) error {
	check := func(name string, off, n int) error {
		if off < 0 || n < 0 || off+n > size {
			return fmt.Errorf("pheap: unreadable image: %s [%d,%d) outside device of %d bytes", name, off, off+n, size)
		}
		return nil
	}
	for _, s := range []struct {
		name   string
		off, n int
	}{
		{"name table", g.NameTabOff, g.NameTabCap * nameEntryBytes},
		{"arena", g.ArenaOff, g.ArenaSize},
		{"redo log", g.RedoOff, g.RedoSize},
		{"mark bitmap", g.MarkBmpOff, g.MarkBmpSize},
		{"region bitmap", g.RegionBmpOff, g.RegionBmpSize},
		{"region-top table", g.RegionTopOff, g.RegionTopSize},
		{"klass segment", g.KsegOff, g.KsegSize},
		{"blackbox ring", g.BlackboxOff, g.BlackboxSize},
		{"data heap", g.DataOff, g.DataSize},
	} {
		if err := check(s.name, s.off, s.n); err != nil {
			return err
		}
	}
	if g.DataSize%layout.RegionSize != 0 || g.RegionTopSize < g.Regions()*layout.RegionTopStride {
		return fmt.Errorf("pheap: unreadable image: inconsistent region geometry")
	}
	if g.ScratchOff < g.DataOff || g.ScratchOff+layout.RegionSize > g.DataOff+g.DataSize {
		return fmt.Errorf("pheap: unreadable image: scratch region outside data heap")
	}
	if g.RedoSize < 24 {
		return fmt.Errorf("pheap: unreadable image: redo area too small")
	}
	return nil
}

// stampChecksums writes the v5 checksums onto a pre-v5 image from its
// metadata as read: region-top line checksums for every touched line,
// and the committed-batch checksum if a redo batch is pending. The
// GC-phase checksum is stamped by the caller's metadata flush path.
func stampChecksums(dev *nvm.Device, geo Geometry) {
	dev.WriteU64(mGCPhaseSum, gcPhaseSum(dev.ReadU64(mGCPhase)))
	for r := 0; r < geo.Regions(); r++ {
		off := geo.RegionTopOff + r*layout.RegionTopStride
		top := dev.ReadU64(off)
		if top == 0 {
			continue // the all-zero line is already valid
		}
		dev.WriteU64(off+8, regionTopSum(r, top))
		dev.Flush(off, 16)
	}
	if dev.ReadU64(geo.RedoOff) == 1 {
		count := int(dev.ReadU64(geo.RedoOff + 8))
		if count >= 0 && count <= (geo.RedoSize-24)/16 {
			dev.WriteU64(geo.RedoOff+geo.RedoSize-8, redoSumAt(dev, geo, count))
			dev.Flush(geo.RedoOff+geo.RedoSize-8, 8)
		}
		// An out-of-range count is left as-is: validation will reject
		// it, exactly as it would a corrupt v5 batch.
	}
}

// resolveFillers caches the filler klass records so gap plugging never
// needs the metadata lock. Create ensures both records exist; any v2
// image therefore carries them.
func (h *Heap) resolveFillers() {
	h.fillerK = h.reg.Filler()
	h.fillerArrK = h.reg.FillerArray()
	h.kmu.RLock()
	h.fillerAddr = h.segByName[h.fillerK.Name]
	h.fillerArrAddr = h.segByName[h.fillerArrK.Name]
	h.kmu.RUnlock()
}

// Device exposes the backing device (benchmarks read its stats; the GC
// flushes through it).
func (h *Heap) Device() *nvm.Device { return h.dev }

// SetTelemetry installs the heap's telemetry registry. Call before
// mutators attach allocators; a nil registry (the default) disables
// recording. The default allocator predates installation and keeps a nil
// cell — its traffic stays unattributed, which is the honest reading of
// facade-routed allocations.
func (h *Heap) SetTelemetry(r *telemetry.Registry) {
	h.tel = r
	h.fr.SetTelemetry(r)
}

// Telemetry returns the heap's registry (nil when disabled). All registry
// and cell methods are nil-receiver-safe, so callers thread the result
// without branching.
func (h *Heap) Telemetry() *telemetry.Registry { return h.tel }

// EnableFlightRecorder attaches the heap's NVM event journal for
// appending. Call before mutators run (and before GC recovery, so
// recovery steps are journaled). Returns (nil, nil) when the image
// carries no ring — pre-v4 images upgraded in place — which simply
// leaves the recorder disabled. Idempotent.
func (h *Heap) EnableFlightRecorder() (*blackbox.Recorder, error) {
	if h.fr != nil {
		return h.fr, nil
	}
	if h.geo.BlackboxSize == 0 {
		return nil, nil
	}
	r, err := blackbox.Attach(h.dev, h.geo.BlackboxOff, h.geo.BlackboxSize)
	if err != nil {
		return nil, fmt.Errorf("pheap: flight recorder: %w", err)
	}
	r.SetTelemetry(h.tel)
	h.fr = r
	return r, nil
}

// FlightRecorder returns the heap's recorder (nil when disabled). All
// recorder methods are nil-receiver-safe, so callers append without
// branching.
func (h *Heap) FlightRecorder() *blackbox.Recorder { return h.fr }

// UpgradedFrom reports the format version this Load upgraded the image
// from, or 0 if it was already current.
func (h *Heap) UpgradedFrom() uint64 { return h.upgradedFrom }

// BlackboxRegion locates the flight-recorder ring on a raw heap image
// without loading (or mutating) the heap — Load would apply redo
// batches, plug regions, and upgrade formats, all wrong for a crashed
// image being post-mortemed. Only the magic, version, and ring
// coordinates are read.
func BlackboxRegion(dev *nvm.Device) (off, size int, err error) {
	if dev.Size() < metadataBytes {
		return 0, 0, fmt.Errorf("pheap: image too small")
	}
	if dev.ReadU64(mMagic) != heapMagic {
		return 0, 0, fmt.Errorf("pheap: bad heap magic")
	}
	if v := dev.ReadU64(mVersion); v < heapVersionBlackbox {
		return 0, 0, fmt.Errorf("pheap: image format v%d predates the flight recorder (v%d)", v, heapVersionBlackbox)
	}
	off, size = int(dev.ReadU64(mBlackboxOff)), int(dev.ReadU64(mBlackboxSize))
	if size == 0 {
		return 0, 0, fmt.Errorf("pheap: image carries no flight-recorder ring (upgraded from an older format)")
	}
	return off, size, nil
}

// Registry returns the klass registry this heap resolves against.
func (h *Heap) Registry() *klass.Registry { return h.reg }

// Name reports the heap's name-manager identity.
func (h *Heap) Name() string { return h.name }

// SetName sets the heap's name (used by the name manager on load).
func (h *Heap) SetName(n string) { h.name = n }

// Base reports the heap's virtual base address (the address hint).
func (h *Heap) Base() layout.Ref { return h.base }

// Limit reports one past the heap's highest virtual address.
func (h *Heap) Limit() layout.Ref { return h.base + layout.Ref(h.dev.Size()) }

// Geo returns the component geometry.
func (h *Heap) Geo() Geometry { return h.geo }

// Contains reports whether ref points into this heap's data area.
func (h *Heap) Contains(ref layout.Ref) bool {
	return ref >= h.base+layout.Ref(h.geo.DataOff) && ref < h.base+layout.Ref(h.geo.DataOff+h.geo.DataSize)
}

// ContainsImage reports whether ref points anywhere inside the heap image
// (including metadata and the Klass segment).
func (h *Heap) ContainsImage(ref layout.Ref) bool {
	return ref >= h.base && ref < h.Limit()
}

// OffOf converts a virtual address into a device offset.
func (h *Heap) OffOf(ref layout.Ref) int { return int(ref - h.base) }

// AddrOf converts a device offset into a virtual address.
func (h *Heap) AddrOf(off int) layout.Ref { return h.base + layout.Ref(off) }

// RegionTopMetaOff is the device offset of region r's persisted top word,
// for redo-log entries and crash tests.
func (h *Heap) RegionTopMetaOff(r int) int {
	return h.geo.RegionTopOff + r*layout.RegionTopStride
}

// RegionTop reports region r's current top (the volatile mirror of the
// persisted table entry; see alloc.go for the encoding).
func (h *Heap) RegionTop(r int) int { return int(h.regionTops[r].Load()) }

// persistRegionTop advances region r's persisted top and its mirror. The
// caller must already have persisted every object header below the new
// top — this store is the publication point. The line checksum rides
// the same flush (value and checksum share the 64-byte table line), so
// detection costs one extra store and zero extra flushes or fences.
func (h *Heap) persistRegionTop(r, top int) {
	off := h.RegionTopMetaOff(r)
	h.dev.WriteU64(off, uint64(top))
	h.dev.WriteU64(off+8, regionTopSum(r, uint64(top)))
	h.dev.Flush(off, 16)
	h.dev.Fence()
	h.regionTops[r].Store(int64(top))
}

// Top reports one past the highest allocated byte across all regions —
// the successor of the paper's single top pointer, derived from the
// region-top table. Gaps below it (retired PLAB tails, fillers) count as
// used.
func (h *Heap) Top() int {
	top := h.geo.DataOff
	for r := 0; r < h.geo.DataRegions(); r++ {
		if t := int(h.regionTops[r].Load()); t > regionTopHumongousCont && t > top {
			top = t
		}
	}
	return top
}

// UsedBytes reports data-heap bytes at or below the allocation frontier
// (fillers and retired tails included).
func (h *Heap) UsedBytes() int { return h.Top() - h.geo.DataOff }

// FormatVersion reports the persisted heap format version (diagnostics;
// Load upgrades supported older versions in place, so a loaded heap
// normally reads the current version).
func (h *Heap) FormatVersion() uint64 { return h.dev.ReadU64(mVersion) }

// GlobalTS reports the persisted global GC timestamp.
func (h *Heap) GlobalTS() uint64 { return h.globalTS.Load() }

// GCActive reports whether the image is marked as mid-collection.
func (h *Heap) GCActive() bool { return h.gcActive.Load() }

func (h *Heap) persistU64(off int, v uint64) {
	h.dev.WriteU64(off, v)
	h.dev.Flush(off, 8)
	h.dev.Fence()
}

// SetGCState persists the global timestamp and GC-active flag, in that
// store order (timestamp first) so a partial persist can only yield
// {new TS, inactive} — a harmless no-op — never {old TS, active}, which
// would let stale timestamps masquerade as processed objects.
func (h *Heap) SetGCState(ts uint64, active bool) {
	h.dev.WriteU64(mGlobalTS, ts)
	var a uint64
	if active {
		a = 1
	}
	h.dev.WriteU64(mGCActive, a)
	h.dev.Flush(mGlobalTS, 16)
	h.dev.Fence()
	h.globalTS.Store(ts)
	h.gcActive.Store(active)
}

// GCActiveMetaOff exposes the metadata offset of the gcActive flag for
// redo-log entries.
func (h *Heap) GCActiveMetaOff() int { return mGCActive }

// TryBeginCollection claims the heap's single-collector slot, reporting
// false if another collection (or recovery) is already running in this
// process. Pair with EndCollection.
func (h *Heap) TryBeginCollection() bool { return h.collecting.CompareAndSwap(false, true) }

// EndCollection releases the single-collector slot.
func (h *Heap) EndCollection() { h.collecting.Store(false) }

// GCPhase reports the persisted GC-phase word (volatile mirror).
func (h *Heap) GCPhase() uint64 { return h.gcPhase.Load() }

// SetGCPhase persists the GC-phase word (write + flush + fence — it is a
// single word, so the store is atomic on the media) and updates the
// mirror. The concurrent collector sets GCPhaseConcurrentMark before the
// first trace step and clears it only once the collection has either
// aborted or transitioned to the gcActive compaction protocol, so a
// reloaded image can always tell an interrupted mark (discard, restart
// fresh) from an interrupted compaction (resume via the mark bitmap).
func (h *Heap) SetGCPhase(p uint64) {
	h.dev.WriteU64(mGCPhase, p)
	h.dev.WriteU64(mGCPhaseSum, gcPhaseSum(p))
	// One flush covers both: the checksum word lives in the phase
	// word's cache line by construction.
	h.dev.Flush(mGCPhase, 8)
	h.dev.Fence()
	h.gcPhase.Store(p)
}

// GCPhaseMetaOff exposes the metadata offset of the GC-phase word for
// crash tests.
func (h *Heap) GCPhaseMetaOff() int { return mGCPhase }

// GCPhaseSumMetaOff exposes the metadata offset of the GC-phase
// checksum word (same cache line as the phase word) for fault-injection
// tests and the faults experiment.
func (h *Heap) GCPhaseSumMetaOff() int { return mGCPhaseSum }

// SnapshotRegionTops copies the current region-top table mirrors — the
// snapshot-at-the-beginning boundary the concurrent marker traces below
// while mutators keep bump-allocating above (allocate-black). Entries
// keep the table's raw encoding (0 untouched, 1 humongous interior,
// otherwise a parse limit); IsRealTop distinguishes them. Callers take
// the snapshot with the world stopped.
func (h *Heap) SnapshotRegionTops() []int {
	tops := make([]int, len(h.regionTops))
	for i := range tops {
		tops[i] = int(h.regionTops[i].Load())
	}
	return tops
}

// IsRealTop reports whether a region-top table value is a parse limit
// (as opposed to the untouched or humongous-interior sentinels).
func IsRealTop(top int) bool { return top > regionTopHumongousCont }

// PrepareForCollection is the mutator-state side of the GC safepoint:
// every registered allocator's PLAB and recycled hole is dropped (their
// region tops are already persisted, so nothing is lost), the dispenser
// forgets its free list — the collector is about to rearrange the heap
// and republish region tops through the redo log — and every pending
// remembered-set delta is published through the heap's sink, so the
// collector that is about to run (either flavor; both call this first)
// observes a complete NVM→DRAM remembered set. The world must be
// stopped, as for the collection itself.
func (h *Heap) PrepareForCollection() {
	h.PublishRemsetDeltas()
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, a := range h.allocators {
		a.dropBuffersForGC()
	}
	h.freeRegions = nil
	h.freeHoles = nil
	h.holeCount.Store(0)
}

// RefreshAfterRedo re-reads the volatile mirrors of redo-applied fields
// and rebuilds the region dispenser from the republished top table. The
// GC's finish step calls it after applying the metadata redo batch.
func (h *Heap) RefreshAfterRedo() {
	h.gcActive.Store(h.dev.ReadU64(mGCActive) != 0)
	h.globalTS.Store(h.dev.ReadU64(mGlobalTS))
	h.rebuildRegionState(false)
	h.layoutEpoch.Add(1)
}

// LayoutEpoch reports the heap's move-event counter: it advances
// whenever a collection finishes or the heap rebases — the only times
// an object's address can change. A reference cached together with the
// epoch is still valid while the epoch matches and the caller is inside
// a safepoint interval.
func (h *Heap) LayoutEpoch() uint64 { return h.layoutEpoch.Load() }

// BumpLayoutEpoch invalidates cached references (Rebase calls it).
func (h *Heap) BumpLayoutEpoch() { h.layoutEpoch.Add(1) }

// rebuildRegionState re-derives the volatile region mirrors and the
// dispenser's free list from the persisted region-top table. With plug
// set (load of a clean image), half-open PLAB regions — top strictly
// inside the region — are sealed: their tail is plugged with a persisted
// filler and the top advanced to the region end, so a region recovered
// from a crash parses completely and the "stale top → truncation"
// invariant is re-established with no dangling bump state.
func (h *Heap) rebuildRegionState(plug bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	dataRegions := h.geo.DataRegions()
	h.freeRegions = h.freeRegions[:0]
	h.frontier = 0
	for r := 0; r < h.geo.Regions(); r++ {
		start := h.geo.DataOff + r*layout.RegionSize
		end := start + layout.RegionSize
		t := int(h.dev.ReadU64(h.RegionTopMetaOff(r)))
		if plug && r < dataRegions && t > start && t < end {
			// Half-open PLAB: everything below t parses (headers persist
			// before tops); the bytes above are unordered garbage. Seal
			// the region so it is whole-or-empty from here on.
			h.fillGapRaw(t, end-t)
			h.persistRegionTop(r, end)
			t = end
		}
		h.regionTops[r].Store(int64(t))
		if r < dataRegions && t != 0 {
			h.frontier = r + 1
		}
	}
	for r := 0; r < h.frontier; r++ {
		start := h.geo.DataOff + r*layout.RegionSize
		t := int(h.regionTops[r].Load())
		// Dispensable: fully free regions and partial regions with bump
		// headroom. Sentinel (humongous interior) and overlong tops
		// (humongous heads) are excluded.
		if t == 0 || (t > regionTopHumongousCont && t < start+layout.RegionSize) {
			h.freeRegions = append(h.freeRegions, r)
		}
	}
}

// Hole is a filler-covered gap below a region's top, reusable by the
// allocator. A hole never crosses a region boundary.
type Hole struct{ Lo, Hi int }

// SetFreeHoles installs the collector's list of reusable gaps (ascending,
// each fully covered by fillers, none crossing a region boundary). The
// list is volatile bookkeeping: losing it costs reuse until the next GC,
// never correctness.
func (h *Heap) SetFreeHoles(holes []Hole) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.freeHoles = append([]Hole(nil), holes...)
	h.holeCount.Store(int64(len(h.freeHoles)))
}

// ResetFreeHoles drops the recycling state; the collector calls it before
// it starts rearranging the heap.
func (h *Heap) ResetFreeHoles() { h.SetFreeHoles(nil) }

// MergeHoleLists combines per-worker hole lists into one ascending list.
// Parallel compaction shards gap discovery by region, so each worker's
// list is already sorted and no two lists overlap; the merge is a k-way
// pick of the smallest head. The result satisfies SetFreeHoles's
// ascending contract.
func MergeHoleLists(lists [][]Hole) []Hole {
	n := 0
	for _, l := range lists {
		n += len(l)
	}
	if n == 0 {
		return nil
	}
	out := make([]Hole, 0, n)
	idx := make([]int, len(lists))
	for len(out) < n {
		best := -1
		for i, l := range lists {
			if idx[i] < len(l) && (best < 0 || l[idx[i]].Lo < lists[best][idx[best]].Lo) {
				best = i
			}
		}
		out = append(out, lists[best][idx[best]])
		idx[best]++
	}
	return out
}

// FreeBytes estimates the allocatable capacity: untouched frontier
// regions, headroom in dispensable regions, and recycled holes. Space
// inside currently attached PLABs counts as allocated.
func (h *Heap) FreeBytes() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	free := (h.geo.DataRegions() - h.frontier) * layout.RegionSize
	for _, r := range h.freeRegions {
		start := h.geo.DataOff + r*layout.RegionSize
		t := int(h.regionTops[r].Load())
		if t <= regionTopHumongousCont {
			t = start
		}
		free += start + layout.RegionSize - t
	}
	for _, hole := range h.freeHoles {
		free += hole.Hi - hole.Lo
	}
	return free
}
