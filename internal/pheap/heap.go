// Package pheap implements PJH, the Persistent Java Heap of the paper's
// §3–§4: an NVM-resident space holding Java objects, laid out as
//
//	metadata area | name table | string arena | redo log |
//	mark bitmap | region bitmap | Klass segment | data heap (+ scratch region)
//
// All components live on one nvm.Device so the whole heap is a single
// reloadable image. The metadata area stores the address hint, heap size,
// top pointer, global GC timestamp, and GC-active flag (paper Figure 8);
// the name table maps string constants to Klass entries and root entries;
// the Klass segment stores place-holder Klass records that are
// re-initialized in place on load so class pointers inside objects stay
// valid; the data heap is carved into regions for the crash-consistent
// compacting collector in package pgc.
package pheap

import (
	"fmt"
	"sync"
	"time"

	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/nvm"
)

const (
	heapMagic   = 0x4553_5052_4845_4150 // "ESPRHEAP"
	heapVersion = 1
)

// Metadata field offsets (device-relative). The whole block fits in three
// cache lines at the start of the device.
const (
	mMagic         = 0
	mVersion       = 8
	mAddressHint   = 16
	mDeviceSize    = 24
	mTop           = 32
	mGlobalTS      = 40
	mGCActive      = 48
	mNameTabOff    = 56
	mNameTabCap    = 64
	mArenaOff      = 72
	mArenaSize     = 80
	mArenaUsed     = 88
	mRedoOff       = 96
	mRedoSize      = 104
	mMarkBmpOff    = 112
	mMarkBmpSize   = 120
	mRegionBmpOff  = 128
	mRegionBmpSize = 136
	mKsegOff       = 144
	mKsegSize      = 152
	mKsegUsed      = 160
	mDataOff       = 168
	mDataSize      = 176
	mScratchOff    = 184
	metadataBytes  = 192
)

// Config sizes a new heap. Zero values select defaults.
type Config struct {
	// Name identifies the heap to the external name manager.
	Name string
	// AddressHint is the virtual base address the heap wants to occupy
	// (paper: "the starting virtual address of the whole heap for future
	// heap reloading"). Defaults to layout.DefaultPJHBase.
	AddressHint layout.Ref
	// DataSize is the requested data-heap capacity in bytes; it is rounded
	// up to whole regions and one extra scratch region is added for the
	// compactor. Default 16 MB.
	DataSize int
	// KsegSize caps the Klass segment. Default 1 MB.
	KsegSize int
	// NameTabCap is the name table capacity in entries. Default 4096.
	NameTabCap int
	// ArenaSize caps the name-string arena. Default 256 KB.
	ArenaSize int
	// Mode and WriteLatency configure the backing nvm.Device.
	Mode         nvm.Mode
	WriteLatency time.Duration
}

func (c *Config) fillDefaults() {
	if c.AddressHint == 0 {
		c.AddressHint = layout.DefaultPJHBase
	}
	if c.DataSize == 0 {
		c.DataSize = 16 << 20
	}
	if c.KsegSize == 0 {
		c.KsegSize = 1 << 20
	}
	if c.NameTabCap == 0 {
		c.NameTabCap = 4096
	}
	if c.ArenaSize == 0 {
		c.ArenaSize = 256 << 10
	}
}

// Geometry is the resolved component layout of a heap image.
type Geometry struct {
	NameTabOff, NameTabCap      int
	ArenaOff, ArenaSize         int
	RedoOff, RedoSize           int
	MarkBmpOff, MarkBmpSize     int
	RegionBmpOff, RegionBmpSize int
	KsegOff, KsegSize           int
	DataOff, DataSize           int // includes the scratch region
	ScratchOff                  int
}

// Regions reports the number of data regions, including the scratch
// region.
func (g Geometry) Regions() int { return g.DataSize / layout.RegionSize }

// Heap is a loaded PJH instance. Allocation is safe for concurrent use;
// GC and load/recovery assume the world is stopped, as in the JVM.
type Heap struct {
	dev  *nvm.Device
	reg  *klass.Registry
	name string
	base layout.Ref
	geo  Geometry

	mu        sync.Mutex
	top       int // volatile mirror of the persisted top (device offset)
	gcActive  bool
	globalTS  uint64
	ksegUsed  int
	arenaUsed int

	// Hole recycling: the collector reports the filler-covered gaps below
	// top that it left behind; the allocator refills them before growing
	// top. The list is volatile — after a reload it starts empty and is
	// repopulated by the next collection.
	freeHoles []Hole
	holeCur   int // active recycled hole being filled; 0 = none
	holeEnd   int

	segByAddr map[layout.Ref]*klass.Klass
	segByName map[string]layout.Ref
}

func align(n, a int) int { return (n + a - 1) &^ (a - 1) }

// Create formats a fresh heap on a new device.
func Create(reg *klass.Registry, cfg Config) (*Heap, error) {
	cfg.fillDefaults()
	dataSize := align(cfg.DataSize, layout.RegionSize) + layout.RegionSize // + scratch
	regions := dataSize / layout.RegionSize

	geo := Geometry{NameTabCap: cfg.NameTabCap, ArenaSize: align(cfg.ArenaSize, 64)}
	off := align(metadataBytes, 64)
	geo.NameTabOff = off
	off += cfg.NameTabCap * nameEntryBytes
	geo.ArenaOff = off
	off += geo.ArenaSize
	geo.RedoOff = off
	geo.RedoSize = align(16+cfg.NameTabCap*16+64, 64)
	off += geo.RedoSize
	geo.MarkBmpOff = off
	geo.MarkBmpSize = align(dataSize/layout.WordSize/8, 64)
	off += geo.MarkBmpSize
	geo.RegionBmpOff = off
	geo.RegionBmpSize = align((regions+7)/8, 64)
	off += geo.RegionBmpSize
	geo.KsegOff = off
	geo.KsegSize = align(cfg.KsegSize, 64)
	off += geo.KsegSize
	off = align(off, layout.RegionSize)
	geo.DataOff = off
	geo.DataSize = dataSize
	geo.ScratchOff = off + dataSize - layout.RegionSize
	total := off + dataSize

	dev := nvm.New(nvm.Config{Size: total, Mode: cfg.Mode, WriteLatency: cfg.WriteLatency})
	h := &Heap{
		dev: dev, reg: reg, name: cfg.Name, base: cfg.AddressHint, geo: geo,
		top:       geo.DataOff,
		segByAddr: make(map[layout.Ref]*klass.Klass),
		segByName: make(map[string]layout.Ref),
	}

	dev.WriteU64(mMagic, heapMagic)
	dev.WriteU64(mVersion, heapVersion)
	dev.WriteU64(mAddressHint, uint64(cfg.AddressHint))
	dev.WriteU64(mDeviceSize, uint64(total))
	dev.WriteU64(mTop, uint64(h.top))
	dev.WriteU64(mGlobalTS, 1)
	dev.WriteU64(mGCActive, 0)
	dev.WriteU64(mNameTabOff, uint64(geo.NameTabOff))
	dev.WriteU64(mNameTabCap, uint64(geo.NameTabCap))
	dev.WriteU64(mArenaOff, uint64(geo.ArenaOff))
	dev.WriteU64(mArenaSize, uint64(geo.ArenaSize))
	dev.WriteU64(mArenaUsed, 0)
	dev.WriteU64(mRedoOff, uint64(geo.RedoOff))
	dev.WriteU64(mRedoSize, uint64(geo.RedoSize))
	dev.WriteU64(mMarkBmpOff, uint64(geo.MarkBmpOff))
	dev.WriteU64(mMarkBmpSize, uint64(geo.MarkBmpSize))
	dev.WriteU64(mRegionBmpOff, uint64(geo.RegionBmpOff))
	dev.WriteU64(mRegionBmpSize, uint64(geo.RegionBmpSize))
	dev.WriteU64(mKsegOff, uint64(geo.KsegOff))
	dev.WriteU64(mKsegSize, uint64(geo.KsegSize))
	dev.WriteU64(mKsegUsed, 0)
	dev.WriteU64(mDataOff, uint64(geo.DataOff))
	dev.WriteU64(mDataSize, uint64(dataSize))
	dev.WriteU64(mScratchOff, uint64(geo.ScratchOff))
	dev.Flush(0, metadataBytes)
	dev.Fence()
	h.globalTS = 1

	// Every heap carries the filler classes so allocation gaps parse.
	if _, err := h.EnsureKlass(reg.Filler()); err != nil {
		return nil, err
	}
	if _, err := h.EnsureKlass(reg.FillerArray()); err != nil {
		return nil, err
	}
	return h, nil
}

// Load opens an existing heap image. If the image was mid-GC when it was
// last persisted, the heap reports GCActive()==true and the caller must
// run pgc recovery before using it (core.LoadHeap does).
func Load(dev *nvm.Device, reg *klass.Registry) (*Heap, error) {
	if dev.Size() < metadataBytes {
		return nil, fmt.Errorf("pheap: image too small")
	}
	if dev.ReadU64(mMagic) != heapMagic {
		return nil, fmt.Errorf("pheap: bad heap magic")
	}
	if v := dev.ReadU64(mVersion); v != heapVersion {
		return nil, fmt.Errorf("pheap: unsupported heap version %d", v)
	}
	if sz := dev.ReadU64(mDeviceSize); int(sz) != dev.Size() {
		return nil, fmt.Errorf("pheap: image size %d does not match metadata %d", dev.Size(), sz)
	}
	geo := Geometry{
		NameTabOff: int(dev.ReadU64(mNameTabOff)), NameTabCap: int(dev.ReadU64(mNameTabCap)),
		ArenaOff: int(dev.ReadU64(mArenaOff)), ArenaSize: int(dev.ReadU64(mArenaSize)),
		RedoOff: int(dev.ReadU64(mRedoOff)), RedoSize: int(dev.ReadU64(mRedoSize)),
		MarkBmpOff: int(dev.ReadU64(mMarkBmpOff)), MarkBmpSize: int(dev.ReadU64(mMarkBmpSize)),
		RegionBmpOff: int(dev.ReadU64(mRegionBmpOff)), RegionBmpSize: int(dev.ReadU64(mRegionBmpSize)),
		KsegOff: int(dev.ReadU64(mKsegOff)), KsegSize: int(dev.ReadU64(mKsegSize)),
		DataOff: int(dev.ReadU64(mDataOff)), DataSize: int(dev.ReadU64(mDataSize)),
		ScratchOff: int(dev.ReadU64(mScratchOff)),
	}
	h := &Heap{
		dev: dev, reg: reg,
		base:      layout.Ref(dev.ReadU64(mAddressHint)),
		geo:       geo,
		top:       int(dev.ReadU64(mTop)),
		globalTS:  dev.ReadU64(mGlobalTS),
		gcActive:  dev.ReadU64(mGCActive) != 0,
		ksegUsed:  int(dev.ReadU64(mKsegUsed)),
		arenaUsed: int(dev.ReadU64(mArenaUsed)),
		segByAddr: make(map[layout.Ref]*klass.Klass),
		segByName: make(map[string]layout.Ref),
	}
	// Class re-initialization in place: cost ∝ number of Klasses, not
	// objects — the property behind Figure 18's flat UG line.
	if err := h.reinitKlasses(); err != nil {
		return nil, err
	}
	// A committed-but-unapplied GC finish means the collection logically
	// completed; reapplying the redo log is idempotent.
	if h.RedoPending() {
		h.RedoApply()
		h.top = int(dev.ReadU64(mTop))
		h.gcActive = dev.ReadU64(mGCActive) != 0
	}
	return h, nil
}

// Device exposes the backing device (benchmarks read its stats; the GC
// flushes through it).
func (h *Heap) Device() *nvm.Device { return h.dev }

// Registry returns the klass registry this heap resolves against.
func (h *Heap) Registry() *klass.Registry { return h.reg }

// Name reports the heap's name-manager identity.
func (h *Heap) Name() string { return h.name }

// SetName sets the heap's name (used by the name manager on load).
func (h *Heap) SetName(n string) { h.name = n }

// Base reports the heap's virtual base address (the address hint).
func (h *Heap) Base() layout.Ref { return h.base }

// Limit reports one past the heap's highest virtual address.
func (h *Heap) Limit() layout.Ref { return h.base + layout.Ref(h.dev.Size()) }

// Geo returns the component geometry.
func (h *Heap) Geo() Geometry { return h.geo }

// Contains reports whether ref points into this heap's data area.
func (h *Heap) Contains(ref layout.Ref) bool {
	return ref >= h.base+layout.Ref(h.geo.DataOff) && ref < h.base+layout.Ref(h.geo.DataOff+h.geo.DataSize)
}

// ContainsImage reports whether ref points anywhere inside the heap image
// (including metadata and the Klass segment).
func (h *Heap) ContainsImage(ref layout.Ref) bool {
	return ref >= h.base && ref < h.Limit()
}

// OffOf converts a virtual address into a device offset.
func (h *Heap) OffOf(ref layout.Ref) int { return int(ref - h.base) }

// AddrOf converts a device offset into a virtual address.
func (h *Heap) AddrOf(off int) layout.Ref { return h.base + layout.Ref(off) }

// Top reports the current allocation frontier as a device offset.
func (h *Heap) Top() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.top
}

// UsedBytes reports allocated data-heap bytes.
func (h *Heap) UsedBytes() int { return h.Top() - h.geo.DataOff }

// GlobalTS reports the persisted global GC timestamp.
func (h *Heap) GlobalTS() uint64 { return h.globalTS }

// GCActive reports whether the image is marked as mid-collection.
func (h *Heap) GCActive() bool { return h.gcActive }

func (h *Heap) persistU64(off int, v uint64) {
	h.dev.WriteU64(off, v)
	h.dev.Flush(off, 8)
	h.dev.Fence()
}

// SetGCState persists the global timestamp and GC-active flag, in that
// store order (timestamp first) so a partial persist can only yield
// {new TS, inactive} — a harmless no-op — never {old TS, active}, which
// would let stale timestamps masquerade as processed objects.
func (h *Heap) SetGCState(ts uint64, active bool) {
	h.dev.WriteU64(mGlobalTS, ts)
	var a uint64
	if active {
		a = 1
	}
	h.dev.WriteU64(mGCActive, a)
	h.dev.Flush(mGlobalTS, 16)
	h.dev.Fence()
	h.globalTS = ts
	h.gcActive = active
}

// SetTop persists a new allocation frontier (used by the GC finish path
// through the redo log and by tests).
func (h *Heap) SetTop(top int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.top = top
	h.persistU64(mTop, uint64(top))
}

// TopMetaOff exposes the metadata offset of the top field for redo-log
// entries.
func (h *Heap) TopMetaOff() int { return mTop }

// GCActiveMetaOff exposes the metadata offset of the gcActive flag for
// redo-log entries.
func (h *Heap) GCActiveMetaOff() int { return mGCActive }

// RefreshAfterRedo re-reads the volatile mirrors of redo-applied fields.
func (h *Heap) RefreshAfterRedo() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.top = int(h.dev.ReadU64(mTop))
	h.gcActive = h.dev.ReadU64(mGCActive) != 0
	h.globalTS = h.dev.ReadU64(mGlobalTS)
}

// Hole is a filler-covered gap below top, reusable by the allocator. A
// hole never crosses a region boundary.
type Hole struct{ Lo, Hi int }

// SetFreeHoles installs the collector's list of reusable gaps below top
// (ascending, each fully covered by fillers, none crossing a region
// boundary). The list is volatile bookkeeping: losing it costs reuse until
// the next GC, never correctness.
func (h *Heap) SetFreeHoles(holes []Hole) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.freeHoles = append([]Hole(nil), holes...)
	h.holeCur, h.holeEnd = 0, 0
}

// ResetFreeHoles drops the recycling state; the collector calls it before
// it starts rearranging the heap.
func (h *Heap) ResetFreeHoles() { h.SetFreeHoles(nil) }

// FreeBytes estimates the allocatable capacity: the bump headroom plus
// recycled holes.
func (h *Heap) FreeBytes() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	free := h.geo.ScratchOff - h.top
	if free < 0 {
		free = 0
	}
	for _, hole := range h.freeHoles {
		free += hole.Hi - hole.Lo
	}
	if h.holeCur != 0 {
		free += h.holeEnd - h.holeCur
	}
	return free
}
