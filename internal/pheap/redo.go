package pheap

import (
	"fmt"

	"espresso/internal/telemetry/blackbox"
)

// The metadata redo log makes a batch of metadata updates atomic: the GC's
// finish step (rewrite forwarded root addresses, set the new top, clear
// the gcActive flag) must happen all-or-nothing, or a crash between the
// individual stores could leave forwarded roots with an active GC flag or
// vice versa.
//
// Layout at geo.RedoOff:
//
//	+0  state u64 (0 idle, 1 committed)
//	+8  count u64
//	+16 count × { offset u64; value u64 }
//	... (unused headroom) ...
//	+RedoSize-8  batch checksum u64 (v5; covers count and all entries)
//
// Protocol: write entries and the batch checksum, flush, fence; write
// count then state=1, flush, fence (commit point); apply entries with
// flushes; write state=0, flush, fence. Recovery re-applies a committed
// log — application is a set of absolute-offset stores, hence
// idempotent. The checksum is ordered with the entries (before the
// commit fence), so a committed state word guarantees a verifiable
// batch; it costs one flush call and zero extra fences per commit.

// RedoEntry is one 8-byte store to replay.
type RedoEntry struct {
	Off int
	Val uint64
}

// RedoCapacity reports how many entries fit in the log area (the
// trailing word is the batch checksum).
func (h *Heap) RedoCapacity() int { return (h.geo.RedoSize - 24) / 16 }

// RedoCommit persists the entry batch and marks it committed. It does not
// apply it; call RedoApply next. Splitting the two lets crash tests stop
// between commit and apply.
func (h *Heap) RedoCommit(entries []RedoEntry) {
	if len(entries) > h.RedoCapacity() {
		panic("pheap: redo log overflow")
	}
	base := h.geo.RedoOff
	for i, e := range entries {
		h.dev.WriteU64(base+16+i*16, uint64(e.Off))
		h.dev.WriteU64(base+16+i*16+8, e.Val)
	}
	h.dev.WriteU64(h.redoSumOff(), h.redoSumFromDevice(len(entries)))
	if len(entries) > 0 {
		h.dev.Flush(base+16, len(entries)*16)
	}
	h.dev.Flush(h.redoSumOff(), 8)
	h.dev.Fence()
	h.dev.WriteU64(base+8, uint64(len(entries)))
	h.dev.WriteU64(base, 1)
	h.dev.Flush(base, 16)
	h.dev.Fence()
	// Journal after the commit fence: the batch is durable, and the
	// record rides the apply step's trailing fence.
	h.fr.Append(blackbox.EvRedoCommit, uint64(len(entries)), 0, 0)
}

// RedoPending reports whether a committed, unapplied log exists.
func (h *Heap) RedoPending() bool {
	return h.dev.ReadU64(h.geo.RedoOff) == 1
}

// RedoApply replays the committed log and retires it. Entries that land
// on a region-top table slot refresh the line checksum in the same
// per-entry flush, so a batch that republishes tops (the GC finish)
// leaves every covered line verifiable without carrying checksum
// entries of its own — which also keeps the batch within the redo
// capacity of pre-v5 images.
func (h *Heap) RedoApply() {
	base := h.geo.RedoOff
	count := int(h.dev.ReadU64(base + 8))
	for i := 0; i < count; i++ {
		off := int(h.dev.ReadU64(base + 16 + i*16))
		val := h.dev.ReadU64(base + 16 + i*16 + 8)
		h.dev.WriteU64(off, val)
		if r, ok := h.regionTopIndex(off); ok {
			h.dev.WriteU64(off+8, regionTopSum(r, val))
			h.dev.Flush(off, 16)
		} else {
			h.dev.Flush(off, 8)
		}
	}
	h.dev.Fence()
	h.dev.WriteU64(base, 0)
	h.dev.Flush(base, 8)
	h.dev.Fence()
}

// redoValidate checks the redo state word and, for a committed batch,
// its checksum. Strict mode (salv == nil) errors on any failure.
// Salvage discards the unusable batch, which is sound in every
// reachable state: the only committer is the GC finish, whose final
// entry clears gcActive, and RedoApply persists entries in order — so
// at the moment of any crash either gcActive still reads 1 (pgc
// recovery re-derives the whole finish from the mark bitmap) or it
// reads 0 (every material entry had already been applied and the batch
// is spent).
func (h *Heap) redoValidate(salv *SalvageReport) error {
	base := h.geo.RedoOff
	state := h.dev.ReadU64(base)
	ok := true
	switch state {
	case 0:
		return nil
	case 1:
		count := int(h.dev.ReadU64(base + 8))
		if count < 0 || count > h.RedoCapacity() {
			ok = false
		} else if h.dev.ReadU64(h.redoSumOff()) != h.redoSumFromDevice(count) {
			ok = false
		}
	default:
		ok = false
	}
	if ok {
		return nil
	}
	if salv == nil {
		return fmt.Errorf("pheap: corrupt committed redo batch (state %d)", state)
	}
	h.dev.WriteU64(base, 0)
	h.dev.Flush(base, 8)
	h.dev.Fence()
	salv.RedoDiscarded = true
	return nil
}
