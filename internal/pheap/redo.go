package pheap

import "espresso/internal/telemetry/blackbox"

// The metadata redo log makes a batch of metadata updates atomic: the GC's
// finish step (rewrite forwarded root addresses, set the new top, clear
// the gcActive flag) must happen all-or-nothing, or a crash between the
// individual stores could leave forwarded roots with an active GC flag or
// vice versa.
//
// Layout at geo.RedoOff:
//
//	+0  state u64 (0 idle, 1 committed)
//	+8  count u64
//	+16 count × { offset u64; value u64 }
//
// Protocol: write entries, flush, fence; write count then state=1, flush,
// fence (commit point); apply entries with flushes; write state=0, flush,
// fence. Recovery re-applies a committed log — application is a set of
// absolute-offset stores, hence idempotent.

// RedoEntry is one 8-byte store to replay.
type RedoEntry struct {
	Off int
	Val uint64
}

// RedoCapacity reports how many entries fit in the log area.
func (h *Heap) RedoCapacity() int { return (h.geo.RedoSize - 16) / 16 }

// RedoCommit persists the entry batch and marks it committed. It does not
// apply it; call RedoApply next. Splitting the two lets crash tests stop
// between commit and apply.
func (h *Heap) RedoCommit(entries []RedoEntry) {
	if len(entries) > h.RedoCapacity() {
		panic("pheap: redo log overflow")
	}
	base := h.geo.RedoOff
	for i, e := range entries {
		h.dev.WriteU64(base+16+i*16, uint64(e.Off))
		h.dev.WriteU64(base+16+i*16+8, e.Val)
	}
	if len(entries) > 0 {
		h.dev.Flush(base+16, len(entries)*16)
		h.dev.Fence()
	}
	h.dev.WriteU64(base+8, uint64(len(entries)))
	h.dev.WriteU64(base, 1)
	h.dev.Flush(base, 16)
	h.dev.Fence()
	// Journal after the commit fence: the batch is durable, and the
	// record rides the apply step's trailing fence.
	h.fr.Append(blackbox.EvRedoCommit, uint64(len(entries)), 0, 0)
}

// RedoPending reports whether a committed, unapplied log exists.
func (h *Heap) RedoPending() bool {
	return h.dev.ReadU64(h.geo.RedoOff) == 1
}

// RedoApply replays the committed log and retires it.
func (h *Heap) RedoApply() {
	base := h.geo.RedoOff
	count := int(h.dev.ReadU64(base + 8))
	for i := 0; i < count; i++ {
		off := int(h.dev.ReadU64(base + 16 + i*16))
		val := h.dev.ReadU64(base + 16 + i*16 + 8)
		h.dev.WriteU64(off, val)
		h.dev.Flush(off, 8)
	}
	h.dev.Fence()
	h.dev.WriteU64(base, 0)
	h.dev.Flush(base, 8)
	h.dev.Fence()
}
