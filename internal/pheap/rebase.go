package pheap

import (
	"fmt"

	"espresso/internal/klass"
	"espresso/internal/layout"
)

// Rebase moves the heap to a new virtual base address, the paper's remap
// fallback for when loadHeap finds the address hint occupied: "Since all
// the pointers within heap become trash, a thorough scan is warranted to
// update pointers. The remap phase might be very costly, but it may rarely
// happen thanks to the large virtual address space of 64-bit OSes."
//
// Every intra-heap pointer is rewritten: object klass words (they address
// Klass records inside the image), reference fields and elements, name
// table values (Klass entries and root entries), and the metadata address
// hint. Like the paper, the remap is not crash-atomic: it runs at load
// time before the heap is published, and a crash mid-remap requires
// remapping again from the file image.
func (h *Heap) Rebase(newBase layout.Ref) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.gcActive.Load() {
		return fmt.Errorf("pheap: cannot rebase a heap mid-collection")
	}
	oldBase := h.base
	if newBase == oldBase {
		return nil
	}
	oldLimit := oldBase + layout.Ref(h.dev.Size())
	delta := int64(newBase) - int64(oldBase)
	shift := func(r layout.Ref) layout.Ref { return layout.Ref(int64(r) + delta) }
	inOld := func(r layout.Ref) bool { return r >= oldBase && r < oldLimit }

	// Objects: klass words always point into the image; data refs may.
	// The region walk visits everything below each region's top — the
	// same set the single-top scan covered, now per region.
	if err := h.ForEachObject(func(off int, k *klass.Klass, size int) bool {
		kaddr := layout.Ref(h.dev.ReadU64(off + layout.KlassWordOff))
		h.dev.WriteU64(off+layout.KlassWordOff, uint64(shift(kaddr)))
		RefSlots(h.dev, off, k, func(slotBoff int) {
			// Slot values may carry low link-state tag bits
			// (layout.RefTagMask); strip them before the range check and
			// carry them over the shift unchanged.
			raw := layout.Ref(h.dev.ReadU64(off + slotBoff))
			v := layout.UntagRef(raw)
			if v != layout.NullRef && inOld(v) {
				h.dev.WriteU64(off+slotBoff, uint64(shift(v)|layout.RefTag(raw)))
			}
		})
		return true
	}); err != nil {
		return fmt.Errorf("pheap: rebase: %w", err)
	}

	// Name table values: klass entries and root entries are image
	// addresses; shift both.
	for s := 0; s < h.geo.NameTabCap; s++ {
		eoff := h.entryOff(s)
		if h.dev.ReadU64(eoff) != entryStateCommitted {
			continue
		}
		v := layout.Ref(h.dev.ReadU64(eoff + 40))
		if v != layout.NullRef && inOld(v) {
			h.dev.WriteU64(eoff+40, uint64(shift(v)))
		}
	}

	// Metadata and the in-memory mirrors. Region tops are device offsets,
	// not virtual addresses, so the table is untouched by a rebase.
	h.dev.WriteU64(mAddressHint, uint64(newBase))
	h.base = newBase
	h.kmu.Lock()
	newByAddr := make(map[layout.Ref]*klass.Klass, len(h.segByAddr))
	for addr, k := range h.segByAddr {
		newByAddr[shift(addr)] = k
		h.segByName[k.Name] = shift(addr)
	}
	h.segByAddr = newByAddr
	h.kmu.Unlock()
	// The cached filler record addresses shifted with the maps.
	h.resolveFillers()

	h.dev.FlushAll()
	h.dev.Fence()
	h.BumpLayoutEpoch()
	return nil
}
