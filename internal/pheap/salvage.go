package pheap

import (
	"fmt"

	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/nvm"
)

// Salvage semantics. LoadSalvage opens images that the strict Load
// rejects as corrupt, under one hard rule: objects may be *lost*, never
// *fabricated*. Corruption that replay can re-derive is repaired
// (a pending redo batch rewrites every top it covers); corruption that
// cannot is amputated — the region is quarantined, zeroed, and reported
// lost, so no later walk can misinterpret its bytes as objects.
// Unreadable images (bad magic, wrong version range, size mismatch) are
// rejected in both modes: salvage repairs damage inside a recognized
// image, it does not guess at what an image is.

// SalvageReport records what LoadSalvage repaired and what it gave up.
type SalvageReport struct {
	// GCPhaseRepaired notes an undecodable GC-phase word reset to idle.
	// Always safe: an interrupted mark is discardable by design, and an
	// interrupted compaction is re-detected via the gcActive flag.
	GCPhaseRepaired bool `json:"gc_phase_repaired,omitempty"`
	// RedoDiscarded notes a committed redo batch whose checksum failed
	// and was dropped. Safe in every reachable state: the batch's final
	// entry clears gcActive, and entries apply (and persist) in order —
	// so either gcActive still reads 1 and pgc recovery re-derives the
	// entire finish from the mark bitmap, or gcActive reads 0 and every
	// material entry had already been applied.
	RedoDiscarded bool `json:"redo_discarded,omitempty"`
	// RegionsLost lists quarantined data regions: their top line failed
	// its checksum on a clean image, so where parsing should stop is
	// unknowable. The whole region is zeroed and its objects are gone.
	RegionsLost []int `json:"regions_lost,omitempty"`
	// BytesLost is the capacity covered by RegionsLost.
	BytesLost int `json:"bytes_lost,omitempty"`
}

// Dirty reports whether the salvage pass had to change anything.
func (r *SalvageReport) Dirty() bool {
	return r != nil && (r.GCPhaseRepaired || r.RedoDiscarded || len(r.RegionsLost) > 0)
}

func (r *SalvageReport) String() string {
	if !r.Dirty() {
		return "salvage: image clean"
	}
	return fmt.Sprintf("salvage: gc_phase_repaired=%v redo_discarded=%v regions_lost=%d bytes_lost=%d",
		r.GCPhaseRepaired, r.RedoDiscarded, len(r.RegionsLost), r.BytesLost)
}

// LoadSalvage is Load with quarantine-instead-of-fail semantics for
// metadata corruption. The report is non-nil whenever the heap is (a
// clean image yields an empty report). Images that are unreadable, or
// corrupt in a way salvage cannot contain (a rotted top line on a
// mid-compaction image, where resumable compaction depends on the
// persisted state being exactly what the crashed collector left),
// still return an error.
func LoadSalvage(dev *nvm.Device, reg *klass.Registry) (*Heap, *SalvageReport, error) {
	rep := &SalvageReport{}
	h, err := load(dev, reg, rep)
	if err != nil {
		return nil, nil, err
	}
	return h, rep, nil
}

// RegionQuarantined reports whether data region r was quarantined by
// this load. The index layer consults it to drop (never resurrect)
// entries whose storage is gone.
func (h *Heap) RegionQuarantined(r int) bool {
	return h.quarantined != nil && r < len(h.quarantined) && h.quarantined[r]
}

// QuarantinedRegions lists the regions quarantined by this load.
func (h *Heap) QuarantinedRegions() []int {
	var out []int
	for r, q := range h.quarantined {
		if q {
			out = append(out, r)
		}
	}
	return out
}

// RefQuarantined reports whether ref points into a quarantined region —
// the salvage walk's "is this storage gone" predicate.
func (h *Heap) RefQuarantined(ref layout.Ref) bool {
	if h.quarantined == nil || !h.Contains(ref) {
		return false
	}
	r := (h.OffOf(ref) - h.geo.DataOff) / layout.RegionSize
	return r < len(h.quarantined) && h.quarantined[r]
}

// verifyRegionTops validates every region-top line's checksum. In
// strict mode (salv == nil) the first bad line is an error. In salvage
// mode, bad lines on a clean image quarantine their region — expanded
// over whole humongous runs, since losing any line of a run loses the
// object — and the region is zeroed so its bytes can never parse as
// objects again. On a mid-compaction image (gcActive set after redo
// processing) a bad line is not salvageable at region granularity:
// resuming compaction replays against the persisted state, and a
// fabricated replacement could move garbage. That case stays an error;
// the sharding layer degrades to shard-level quarantine instead.
func (h *Heap) verifyRegionTops(salv *SalvageReport) error {
	regions := h.geo.Regions()
	bad := make([]bool, regions)
	anyBad := false
	for r := 0; r < regions; r++ {
		off := h.RegionTopMetaOff(r)
		top := h.dev.ReadU64(off)
		sum := h.dev.ReadU64(off + 8)
		if regionTopLineValid(r, top, sum) {
			continue
		}
		if salv == nil {
			return fmt.Errorf("pheap: region %d: corrupt top line (top %#x, checksum mismatch)", r, top)
		}
		bad[r] = true
		anyBad = true
	}
	if !anyBad {
		return nil
	}
	if h.gcActive.Load() {
		return fmt.Errorf("pheap: corrupt region-top line on a mid-compaction image; not salvageable at region granularity")
	}

	// Expand quarantine over humongous runs: a head's top encodes the
	// run's end beyond its own region, interiors carry the cont
	// sentinel. Any bad region inside a valid head's span takes the
	// whole span with it; a bad region followed by cont sentinels takes
	// those too (their head is the bad region, or lost with it).
	dataRegions := h.geo.DataRegions()
	for r := 0; r < dataRegions; r++ {
		if bad[r] {
			continue
		}
		off := h.RegionTopMetaOff(r)
		top := int(h.dev.ReadU64(off))
		start := h.geo.DataOff + r*layout.RegionSize
		if top <= start+layout.RegionSize {
			continue // not a humongous head
		}
		last := (top - 1 - h.geo.DataOff) / layout.RegionSize
		infected := false
		for q := r; q <= last && q < dataRegions; q++ {
			if bad[q] {
				infected = true
				break
			}
		}
		if infected {
			for q := r; q <= last && q < dataRegions; q++ {
				bad[q] = true
			}
		}
	}
	for r := 0; r < dataRegions; r++ {
		if !bad[r] {
			continue
		}
		for q := r + 1; q < dataRegions; q++ {
			if int(h.dev.ReadU64(h.RegionTopMetaOff(q))) != regionTopHumongousCont || bad[q] {
				break
			}
			bad[q] = true
		}
	}

	h.quarantined = make([]bool, dataRegions)
	for r := 0; r < regions; r++ {
		if !bad[r] {
			continue
		}
		off := h.RegionTopMetaOff(r)
		h.dev.WriteU64(off, 0)
		h.dev.WriteU64(off+8, 0)
		h.dev.Flush(off, 16)
		if r < dataRegions {
			// Zero the data so the region reads as untouched NVM: no
			// stale garbage can ever be re-parsed, and the dispenser may
			// hand the region out again safely.
			start := h.geo.DataOff + r*layout.RegionSize
			h.dev.Zero(start, layout.RegionSize)
			h.dev.Flush(start, layout.RegionSize)
			h.quarantined[r] = true
			salv.RegionsLost = append(salv.RegionsLost, r)
			salv.BytesLost += layout.RegionSize
		}
	}
	h.dev.Fence()
	return nil
}
