package pheap

import (
	"sync"
	"sync/atomic"

	"espresso/internal/layout"
)

// Snapshot-at-the-beginning (SATB) infrastructure for the concurrent
// persistent collector. The marker in pgc/concurrent traces the object
// graph below a snapshot of the region-top table while mutators keep
// running; the SATB invariant — every object reachable at the snapshot
// stays reachable *to the marker* — is maintained by a pre-write barrier:
// before a mutator overwrites a reference slot, the old referent is
// recorded in the mutator's SATB buffer, and the marker drains those
// buffers as extra gray roots. Objects allocated after the snapshot sit
// above the snapshotted tops and are implicitly live (allocate-black), so
// the barrier ignores them.
//
// The heap owns the buffer registry so the collector can drain buffers
// created by any mutator, plus a shared default buffer for reference
// stores made outside any mutator context. Activation and deactivation
// happen with the world stopped, so mutators observe a consistent
// (active, snapshot) pair on every store.

// SATBBuffer collects the pre-write barrier's old-referent records for
// one mutator. The owning mutator appends; the marker drains. A small
// mutex serializes the two — appends are uncontended except at the
// moment of a drain, and the barrier only records during a concurrent
// mark, so the quiescent cost is one atomic load on the heap.
type SATBBuffer struct {
	mu   sync.Mutex
	refs []layout.Ref
}

// Record appends one overwritten referent.
func (b *SATBBuffer) Record(ref layout.Ref) {
	b.mu.Lock()
	b.refs = append(b.refs, ref)
	b.mu.Unlock()
}

// drain moves the buffered refs out, leaving the buffer empty.
func (b *SATBBuffer) drain() []layout.Ref {
	b.mu.Lock()
	refs := b.refs
	b.refs = nil
	b.mu.Unlock()
	return refs
}

// NewSATBBuffer registers a fresh per-mutator SATB buffer with the heap.
func (h *Heap) NewSATBBuffer() *SATBBuffer {
	b := &SATBBuffer{}
	h.satbMu.Lock()
	h.satbBuffers = append(h.satbBuffers, b)
	h.satbMu.Unlock()
	return b
}

// ReleaseSATBBuffer unregisters b. Records still buffered are handed to
// the shared default buffer so a mutator retiring mid-mark cannot lose
// barrier entries.
func (h *Heap) ReleaseSATBBuffer(b *SATBBuffer) {
	if b == nil {
		return
	}
	left := b.drain()
	h.satbMu.Lock()
	for i, other := range h.satbBuffers {
		if other == b {
			h.satbBuffers = append(h.satbBuffers[:i], h.satbBuffers[i+1:]...)
			break
		}
	}
	if len(left) > 0 {
		def := h.defaultSATBLocked()
		h.satbMu.Unlock()
		for _, r := range left {
			def.Record(r)
		}
		return
	}
	h.satbMu.Unlock()
}

// DefaultSATBBuffer returns the heap's shared fallback buffer, used by
// reference stores that run outside any mutator context.
func (h *Heap) DefaultSATBBuffer() *SATBBuffer {
	h.satbMu.Lock()
	b := h.defaultSATBLocked()
	h.satbMu.Unlock()
	return b
}

func (h *Heap) defaultSATBLocked() *SATBBuffer {
	if h.satbDefault == nil {
		h.satbDefault = &SATBBuffer{}
		h.satbBuffers = append(h.satbBuffers, h.satbDefault)
	}
	return h.satbDefault
}

// BeginConcurrentMark publishes the snapshot tops, resets the dirty
// region cards, and arms the pre-write barrier. Must run with the world
// stopped (the initial handshake).
func (h *Heap) BeginConcurrentMark(snapTops []int) {
	h.satbMu.Lock()
	h.satbSnap = append([]int(nil), snapTops...)
	if cards := h.geo.DataSize / SATBCardBytes; len(h.satbDirty) != cards {
		h.satbDirty = make([]atomic.Bool, cards)
	} else {
		for i := range h.satbDirty {
			h.satbDirty[i].Store(false)
		}
	}
	h.satbMu.Unlock()
	h.satbActive.Store(true)
}

// EndConcurrentMark disarms the barrier. Must run with the world stopped
// (the final pause), so no store can be mid-barrier.
func (h *Heap) EndConcurrentMark() {
	h.satbActive.Store(false)
}

// ConcurrentMarkActive reports whether the SATB barrier is armed — the
// one-atomic-load check on every reference store.
func (h *Heap) ConcurrentMarkActive() bool { return h.satbActive.Load() }

// SATBRecordNeeded reports whether an overwritten referent must be
// recorded: the barrier is armed, old points into this heap, and the
// object lies below its region's snapshot top (objects above it were
// allocated after the snapshot and are allocate-black).
func (h *Heap) SATBRecordNeeded(old layout.Ref) bool {
	if old == layout.NullRef || !h.satbActive.Load() || !h.Contains(old) {
		return false
	}
	off := h.OffOf(old)
	r := (off - h.geo.DataOff) / layout.RegionSize
	if r < 0 || r >= len(h.satbSnap) {
		return false
	}
	top := h.satbSnap[r]
	return IsRealTop(top) && off < top
}

// SATBCardBytes is the granularity of the dirty-card table and of the
// marker's outgoing-reference summary: fine enough that a region shared
// between a stable graph and an active allocation area does not drag the
// whole stable part back into the pause-time rescan, coarse enough that
// the tables stay a few words per megabyte.
const SATBCardBytes = 16 << 10

// SATBMarkDirtyCard records that a reference slot of the object at obj
// was stored to while the concurrent mark ran — the card mark that
// invalidates the marker's outgoing-reference summary for the pause-time
// fix-skip (see pgc's compact). Called by the write barrier on every
// heap reference store while marking is active.
func (h *Heap) SATBMarkDirtyCard(obj layout.Ref) {
	c := (h.OffOf(obj) - h.geo.DataOff) / SATBCardBytes
	if c >= 0 && c < len(h.satbDirty) {
		h.satbDirty[c].Store(true)
	}
}

// SATBDirtyCards snapshots the dirty cards (final pause, world stopped):
// cards whose objects received reference stores during the concurrent
// mark and whose outgoing-reference summary is therefore stale.
func (h *Heap) SATBDirtyCards() []bool {
	dirty := make([]bool, len(h.satbDirty))
	for i := range h.satbDirty {
		dirty[i] = h.satbDirty[i].Load()
	}
	return dirty
}

// DrainSATB empties every registered buffer through visit and reports how
// many records it delivered. The marker calls it repeatedly during the
// concurrent phase and once more at the final remark.
func (h *Heap) DrainSATB(visit func(layout.Ref)) int {
	h.satbMu.Lock()
	buffers := append([]*SATBBuffer(nil), h.satbBuffers...)
	h.satbMu.Unlock()
	n := 0
	for _, b := range buffers {
		for _, ref := range b.drain() {
			visit(ref)
			n++
		}
	}
	return n
}

// DrainSATBShard is DrainSATB restricted to the buffers whose registry
// index ≡ worker (mod workers), so a parallel marking pool can drain all
// buffers concurrently without two workers contending on one buffer:
// shards partition the registry, and each buffer's own mutex orders the
// drain against its mutator's appends. A buffer registered after the
// snapshot is picked up by whichever worker owns its index on the next
// round — and the final remark's serial full drain catches any
// leftover records regardless.
func (h *Heap) DrainSATBShard(worker, workers int, visit func(layout.Ref)) int {
	h.satbMu.Lock()
	buffers := append([]*SATBBuffer(nil), h.satbBuffers...)
	h.satbMu.Unlock()
	n := 0
	for i := worker; i < len(buffers); i += workers {
		for _, ref := range buffers[i].drain() {
			visit(ref)
			n++
		}
	}
	return n
}

// SATBRecordBarrier runs the pre-write barrier for one overwritten
// reference slot of the object at obj: the untagged old referent is
// recorded (if the snapshot needs it) and the object's card dirtied.
// raw is the slot's previous value, which may carry low tag bits
// (layout.RefTagMask) that are not part of the address; buf nil selects
// the heap's shared default buffer. Callers gate on
// ConcurrentMarkActive, exactly like core.storeRef.
func (h *Heap) SATBRecordBarrier(obj layout.Ref, raw uint64, buf *SATBBuffer) {
	if old := layout.UntagRef(layout.Ref(raw)); h.SATBRecordNeeded(old) {
		if buf == nil {
			buf = h.DefaultSATBBuffer()
		}
		buf.Record(old)
	}
	h.SATBMarkDirtyCard(obj)
}

// CasWord atomically compares-and-swaps the 8-byte slot at byte offset
// boff of the object at ref — the heap-level cmpxchg the lock-free
// persistent index publishes through. The slot must be 8-aligned (all
// field and element slots are).
func (h *Heap) CasWord(ref layout.Ref, boff int, old, new uint64) bool {
	return h.dev.CompareAndSwapU64(h.OffOf(ref)+boff, old, new)
}

// GetWordAtomic loads an 8-byte object slot with a single atomic machine
// load; the concurrent marker reads reference slots this way while
// mutators may be storing to them.
func (h *Heap) GetWordAtomic(ref layout.Ref, boff int) uint64 {
	return h.dev.ReadU64Atomic(h.OffOf(ref) + boff)
}

// SetWordAtomic stores an 8-byte object slot with a single atomic machine
// store — the mutator half of the marker/mutator pair above. Device
// accounting matches SetWord.
func (h *Heap) SetWordAtomic(ref layout.Ref, boff int, v uint64) {
	h.dev.WriteU64Atomic(h.OffOf(ref)+boff, v)
}
