package pheap

import (
	"testing"

	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/nvm"
)

// TestLoadV2ImageUpgradesInPlace: a heap image from the PLAB-era format
// (version 2, no GC-phase word — the slot was zero metadata padding)
// loads cleanly, reads as phase-idle, and is upgraded to version 3 in
// place without touching the geometry or the data.
func TestLoadV2ImageUpgradesInPlace(t *testing.T) {
	reg := klass.NewRegistry()
	h, err := Create(reg, Config{DataSize: 1 << 20, Mode: nvm.Tracked})
	if err != nil {
		t.Fatal(err)
	}
	node, err := reg.Define(klass.MustInstance("compat/Node", nil,
		klass.Field{Name: "id", Type: layout.FTLong},
	))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := h.Alloc(node, 0)
	if err != nil {
		t.Fatal(err)
	}
	h.SetWord(ref, layout.FieldOff(0), 4242)
	if err := h.SetRoot("keep", ref); err != nil {
		t.Fatal(err)
	}

	// Forge the v2 format: old version number, phase slot back to the
	// zero padding it was.
	dev := h.Device()
	dev.WriteU64(mVersion, heapVersionPLAB)
	dev.WriteU64(mGCPhase, 0)
	dev.FlushAll()
	img := dev.CrashImage(nvm.CrashFlushedOnly, 0)

	dev2 := nvm.FromImage(img, nvm.Config{Mode: nvm.Tracked})
	h2, err := Load(dev2, klass.NewRegistry())
	if err != nil {
		t.Fatalf("v2 image did not load: %v", err)
	}
	if got := dev2.ReadU64(mVersion); got != heapVersion {
		t.Fatalf("version after load = %d, want %d (in-place upgrade)", got, heapVersion)
	}
	if h2.GCPhase() != GCPhaseIdle {
		t.Fatalf("phase = %d, want idle", h2.GCPhase())
	}
	if h2.Geo() != h.Geo() {
		t.Fatalf("geometry changed across the upgrade: %+v vs %+v", h2.Geo(), h.Geo())
	}
	got, ok := h2.GetRoot("keep")
	if !ok {
		t.Fatal("root lost across upgrade")
	}
	if v := h2.GetWord(got, layout.FieldOff(0)); v != 4242 {
		t.Fatalf("payload = %d, want 4242", v)
	}
	// The upgrade is durable: a re-crash reloads as v3 directly.
	img2 := dev2.CrashImage(nvm.CrashFlushedOnly, 0)
	if _, err := Load(nvm.FromImage(img2, nvm.Config{Mode: nvm.Tracked}), klass.NewRegistry()); err != nil {
		t.Fatalf("upgraded image did not reload: %v", err)
	}
}

// TestLoadV3ImageNoRing: a genuine pre-v4 image — version 3, zero
// padding where the ring coordinates now live — upgrades in place to a
// ring-less v4: the flight recorder stays absent (EnableFlightRecorder
// is a no-op), BlackboxRegion refuses it, and the heap works.
func TestLoadV3ImageNoRing(t *testing.T) {
	reg := klass.NewRegistry()
	h, err := Create(reg, Config{DataSize: 1 << 20, Mode: nvm.Tracked})
	if err != nil {
		t.Fatal(err)
	}
	node, err := reg.Define(klass.MustInstance("compat/V3Node", nil,
		klass.Field{Name: "id", Type: layout.FTLong},
	))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := h.Alloc(node, 0)
	if err != nil {
		t.Fatal(err)
	}
	h.SetWord(ref, layout.FieldOff(0), 99)
	if err := h.SetRoot("keep", ref); err != nil {
		t.Fatal(err)
	}

	// Forge v3: old version, and the blackbox words back to the zero
	// padding a real v3 image carries. (The ring bytes are still
	// physically present in the layout, but an unadvertised ring is no
	// ring — the metadata is the manifest.)
	dev := h.Device()
	dev.WriteU64(mVersion, heapVersionGCPhase)
	dev.WriteU64(mBlackboxOff, 0)
	dev.WriteU64(mBlackboxSize, 0)
	dev.FlushAll()
	img := dev.CrashImage(nvm.CrashFlushedOnly, 0)

	rawDev := nvm.FromImage(img, nvm.Config{Mode: nvm.Tracked})
	if _, _, err := BlackboxRegion(rawDev); err == nil {
		t.Fatal("BlackboxRegion accepted a pre-recorder image")
	}

	dev2 := nvm.FromImage(img, nvm.Config{Mode: nvm.Tracked})
	h2, err := Load(dev2, klass.NewRegistry())
	if err != nil {
		t.Fatalf("v3 image did not load: %v", err)
	}
	if got := dev2.ReadU64(mVersion); got != heapVersion {
		t.Fatalf("version after load = %d, want %d", got, heapVersion)
	}
	if h2.UpgradedFrom() != heapVersionGCPhase {
		t.Fatalf("UpgradedFrom = %d, want %d", h2.UpgradedFrom(), heapVersionGCPhase)
	}
	if h2.Geo().BlackboxSize != 0 {
		t.Fatalf("upgraded image grew a ring: %+v", h2.Geo())
	}
	r, err := h2.EnableFlightRecorder()
	if err != nil {
		t.Fatalf("EnableFlightRecorder on ring-less heap: %v", err)
	}
	if r != nil {
		t.Fatal("ring-less heap returned a recorder")
	}
	// Nil-recorder appends are free no-ops; the heap itself still works.
	h2.FlightRecorder().Append(1, 2, 3, 4)
	got, ok := h2.GetRoot("keep")
	if !ok {
		t.Fatal("root lost across upgrade")
	}
	if v := h2.GetWord(got, layout.FieldOff(0)); v != 99 {
		t.Fatalf("payload = %d, want 99", v)
	}
	if _, err := h2.Alloc(node2(t, h2), 0); err != nil {
		t.Fatalf("alloc on upgraded heap: %v", err)
	}
}

func node2(t *testing.T, h *Heap) *klass.Klass {
	t.Helper()
	k, err := h.Registry().Define(klass.MustInstance("compat/V3Node2", nil,
		klass.Field{Name: "id", Type: layout.FTLong},
	))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestLoadRejectsCorruptPhaseWord: an out-of-range phase word is a
// corrupt image, not a silently-misread one.
func TestLoadRejectsCorruptPhaseWord(t *testing.T) {
	reg := klass.NewRegistry()
	h, err := Create(reg, Config{DataSize: 1 << 20, Mode: nvm.Tracked})
	if err != nil {
		t.Fatal(err)
	}
	dev := h.Device()
	dev.WriteU64(mGCPhase, 7)
	dev.FlushAll()
	img := dev.CrashImage(nvm.CrashFlushedOnly, 0)
	if _, err := Load(nvm.FromImage(img, nvm.Config{Mode: nvm.Tracked}), klass.NewRegistry()); err == nil {
		t.Fatal("corrupt phase word loaded without error")
	}
}

// TestSATBBufferLifecycle: records survive a mid-mark buffer release by
// migrating to the heap's shared buffer, and DrainSATB delivers every
// record exactly once.
func TestSATBBufferLifecycle(t *testing.T) {
	reg := klass.NewRegistry()
	h, err := Create(reg, Config{DataSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	h.BeginConcurrentMark(h.SnapshotRegionTops())
	defer h.EndConcurrentMark()

	b1 := h.NewSATBBuffer()
	b2 := h.NewSATBBuffer()
	b1.Record(layout.Ref(0x1000))
	b2.Record(layout.Ref(0x2000))
	h.ReleaseSATBBuffer(b1) // pending record must migrate, not vanish

	var got []layout.Ref
	n := h.DrainSATB(func(r layout.Ref) { got = append(got, r) })
	if n != 2 || len(got) != 2 {
		t.Fatalf("drained %d records (%v), want 2", n, got)
	}
	seen := map[layout.Ref]bool{}
	for _, r := range got {
		seen[r] = true
	}
	if !seen[0x1000] || !seen[0x2000] {
		t.Fatalf("missing records: %v", got)
	}
	if n := h.DrainSATB(func(layout.Ref) {}); n != 0 {
		t.Fatalf("second drain delivered %d records", n)
	}
}
