package pheap

import (
	"espresso/internal/layout"
	"espresso/internal/nvm"
)

// Bitmap is a device-backed bitset. The mark bitmap keeps one bit per
// heap word (an object is marked at its starting word); the region bitmap
// keeps one bit per region. Both live in the heap image so they survive a
// crash once flushed (paper §4.2: "the mark bitmap can be seen as a sketch
// of the whole heap before the real collection").
type Bitmap struct {
	dev  bitmapDevice
	off  int // device offset of the first word
	bits int
}

// bitmapDevice is the device surface a Bitmap needs — satisfied by both
// *nvm.Device and the per-worker accounting wrapper *nvm.WorkerDevice,
// so parallel GC workers can operate on the shared bitmap while their
// word traffic is tallied per worker.
type bitmapDevice interface {
	ReadU64(off int) uint64
	WriteU64(off int, v uint64)
	OrU64Atomic(off int, mask uint64) uint64
	Zero(off, n int)
	Flush(off, n int)
	Fence()
}

// MarkBitmap returns the heap's mark bitmap (one bit per data-heap word).
func (h *Heap) MarkBitmap() *Bitmap {
	return &Bitmap{dev: h.dev, off: h.geo.MarkBmpOff, bits: h.geo.DataSize / layout.WordSize}
}

// MarkBitmapOn is MarkBitmap with the word operations routed through dev
// — a *nvm.WorkerDevice so each parallel marking worker's bitmap traffic
// lands in its own Stats. All views share the one device-backed bit
// array; only the accounting differs.
func (h *Heap) MarkBitmapOn(dev *nvm.WorkerDevice) *Bitmap {
	return &Bitmap{dev: dev, off: h.geo.MarkBmpOff, bits: h.geo.DataSize / layout.WordSize}
}

// RegionBitmap returns the heap's processed-region bitmap.
func (h *Heap) RegionBitmap() *Bitmap {
	return &Bitmap{dev: h.dev, off: h.geo.RegionBmpOff, bits: h.geo.Regions()}
}

// markIndex converts a data-heap device offset to a mark-bitmap bit index.
func (h *Heap) markIndex(off int) int { return (off - h.geo.DataOff) / layout.WordSize }

// MarkObject sets the mark bit for the object at device offset off.
func (h *Heap) MarkObject(off int) { h.MarkBitmap().Set(h.markIndex(off)) }

// IsMarked reports the mark bit for the object at device offset off.
func (h *Heap) IsMarked(off int) bool { return h.MarkBitmap().Get(h.markIndex(off)) }

// Len reports the number of bits.
func (b *Bitmap) Len() int { return b.bits }

// Set sets bit i.
func (b *Bitmap) Set(i int) {
	woff := b.off + i/64*8
	b.dev.WriteU64(woff, b.dev.ReadU64(woff)|1<<(uint(i)%64))
}

// SetAtomic sets bit i with an atomic fetch-OR on the backing word, safe
// against concurrent setters of other bits in the same word (parallel
// marking publishes end bits this way).
func (b *Bitmap) SetAtomic(i int) {
	b.dev.OrU64Atomic(b.off+i/64*8, 1<<(uint(i)%64))
}

// TrySetAtomic sets bit i and reports whether this call flipped it from
// clear to set — the claim operation parallel marking dedups through: of
// N workers racing to mark one object's begin bit, exactly one observes
// it clear and owns scanning that object.
func (b *Bitmap) TrySetAtomic(i int) bool {
	bit := uint64(1) << (uint(i) % 64)
	return b.dev.OrU64Atomic(b.off+i/64*8, bit)&bit == 0
}

// Clear clears bit i.
func (b *Bitmap) Clear(i int) {
	woff := b.off + i/64*8
	b.dev.WriteU64(woff, b.dev.ReadU64(woff)&^(1<<(uint(i)%64)))
}

// Get reports bit i.
func (b *Bitmap) Get(i int) bool {
	return b.dev.ReadU64(b.off+i/64*8)&(1<<(uint(i)%64)) != 0
}

// ClearAll zeroes the bitmap (volatile store; persist with Persist).
func (b *Bitmap) ClearAll() {
	b.dev.Zero(b.off, (b.bits+63)/64*8)
}

// NextSet returns the first set bit ≥ from, or -1.
func (b *Bitmap) NextSet(from int) int {
	if from < 0 {
		from = 0
	}
	wi := from / 64
	lastW := (b.bits - 1) / 64
	if from >= b.bits {
		return -1
	}
	w := b.dev.ReadU64(b.off+wi*8) >> (uint(from) % 64) << (uint(from) % 64)
	for {
		if w != 0 {
			bit := wi*64 + tz64(w)
			if bit >= b.bits {
				return -1
			}
			return bit
		}
		wi++
		if wi > lastW {
			return -1
		}
		w = b.dev.ReadU64(b.off + wi*8)
	}
}

// ForEachSet invokes fn with every set bit index in ascending order,
// reading each backing word exactly once — the bulk decode the summary
// phase uses, where NextSet's per-bit word re-reads would multiply the
// pause-time device traffic by the object count.
func (b *Bitmap) ForEachSet(fn func(bit int)) { b.ForEachSetBelow(b.bits, fn) }

// ForEachSetBelow is ForEachSet bounded to bits < limit, so a caller
// that knows the bitmap's used prefix (mark bits never lie above the
// allocation tops) pays for that prefix only, not the whole area.
func (b *Bitmap) ForEachSetBelow(limit int, fn func(bit int)) {
	if limit > b.bits {
		limit = b.bits
	}
	if limit <= 0 {
		return
	}
	lastW := (limit - 1) / 64
	for wi := 0; wi <= lastW; wi++ {
		w := b.dev.ReadU64(b.off + wi*8)
		for w != 0 {
			bit := wi*64 + tz64(w)
			if bit >= limit {
				return
			}
			fn(bit)
			w &= w - 1
		}
	}
}

// CountSet reports the number of set bits (diagnostics, tests).
func (b *Bitmap) CountSet() int {
	n := 0
	for i := b.NextSet(0); i >= 0; i = b.NextSet(i + 1) {
		n++
	}
	return n
}

// Persist flushes the bitmap's backing words.
func (b *Bitmap) Persist() {
	b.dev.Flush(b.off, (b.bits+63)/64*8)
	b.dev.Fence()
}

// PersistMarkBitmapUsed persists the mark bitmap's used prefix — the
// words covering bits up to the allocation top — plus whatever earlier
// prefix this process persisted (high-water), instead of the whole
// area. The invariant is that the persisted view beyond the last
// recorded prefix is all zeros: true at Create (the device is born
// zeroed), re-established after every persist (ClearAll zeroes the
// memory view before marking, and the flush covers the previous
// prefix), and forced by a one-time full flush after Load, when an
// earlier process's history is unknown. Collections over small live
// sets in large heaps therefore stop paying a pause-time flush of the
// entire bitmap area.
func (h *Heap) PersistMarkBitmapUsed() {
	usedBits := (h.Top() - h.geo.DataOff) / layout.WordSize
	usedBytes := align((usedBits+7)/8, 64)
	if usedBytes > h.geo.MarkBmpSize {
		usedBytes = h.geo.MarkBmpSize
	}
	cover := usedBytes
	if h.markBmpHi > cover {
		cover = h.markBmpHi
	}
	if cover > 0 {
		h.dev.Flush(h.geo.MarkBmpOff, cover)
	}
	h.dev.Fence()
	h.markBmpHi = usedBytes
}

func tz64(w uint64) int {
	n := 0
	for w&1 == 0 {
		w >>= 1
		n++
	}
	return n
}
