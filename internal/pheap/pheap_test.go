package pheap

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/nvm"
	"espresso/internal/nvm/faultdev"
)

func testHeap(t testing.TB, cfg Config) (*Heap, *klass.Registry) {
	t.Helper()
	reg := klass.NewRegistry()
	if cfg.DataSize == 0 {
		cfg.DataSize = 4 << 20
	}
	if cfg.Mode == 0 {
		cfg.Mode = nvm.Tracked
	}
	h, err := Create(reg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h, reg
}

func definePerson(t testing.TB, reg *klass.Registry) *klass.Klass {
	t.Helper()
	p, err := reg.Define(klass.MustInstance("Person", nil,
		klass.Field{Name: "id", Type: layout.FTLong},
		klass.Field{Name: "name", Type: layout.FTRef, RefKlass: "java/lang/String"},
	))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCreateGeometry(t *testing.T) {
	h, _ := testHeap(t, Config{Name: "geo"})
	g := h.Geo()
	if g.DataOff%layout.RegionSize != 0 {
		t.Fatalf("data area not region aligned: %d", g.DataOff)
	}
	if g.DataSize%layout.RegionSize != 0 {
		t.Fatalf("data size not whole regions: %d", g.DataSize)
	}
	if g.ScratchOff != g.DataOff+g.DataSize-layout.RegionSize {
		t.Fatalf("scratch not last region")
	}
	if g.MarkBmpSize < g.DataSize/layout.WordSize/8 {
		t.Fatalf("mark bitmap too small: %d", g.MarkBmpSize)
	}
	if g.RegionTopSize != g.Regions()*layout.RegionTopStride {
		t.Fatalf("region-top table size = %d for %d regions", g.RegionTopSize, g.Regions())
	}
	if g.RegionTopOff%layout.LineSize != 0 {
		t.Fatalf("region-top table not line aligned: %d", g.RegionTopOff)
	}
	if h.Top() != g.DataOff {
		t.Fatalf("fresh top = %d", h.Top())
	}
	for r := 0; r < g.Regions(); r++ {
		if h.RegionTop(r) != 0 {
			t.Fatalf("fresh region %d top = %d", r, h.RegionTop(r))
		}
	}
}

func TestAllocAndAccess(t *testing.T) {
	h, reg := testHeap(t, Config{})
	p := definePerson(t, reg)
	ref, err := h.Alloc(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Contains(ref) {
		t.Fatalf("alloc outside heap: %#x", uint64(ref))
	}
	k, err := h.KlassOf(ref)
	if err != nil || k.Name != "Person" {
		t.Fatalf("KlassOf = %v %v", k, err)
	}
	idOff := layout.FieldOff(0)
	h.SetWord(ref, idOff, 42)
	if got := h.GetWord(ref, idOff); got != 42 {
		t.Fatalf("field = %d", got)
	}
	// Array allocation.
	arr, err := h.Alloc(reg.PrimArray(layout.FTLong), 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.ArrayLen(arr) != 10 {
		t.Fatalf("array len = %d", h.ArrayLen(arr))
	}
}

func TestAllocZeroesBody(t *testing.T) {
	h, reg := testHeap(t, Config{})
	p := definePerson(t, reg)
	ref, _ := h.Alloc(p, 0)
	// Scribble, "free" conceptually, then ensure a new allocation elsewhere
	// starts zeroed.
	h.SetWord(ref, layout.FieldOff(0), ^uint64(0))
	ref2, _ := h.Alloc(p, 0)
	if h.GetWord(ref2, layout.FieldOff(0)) != 0 || h.GetWord(ref2, layout.FieldOff(1)) != 0 {
		t.Fatal("new object body not zeroed")
	}
}

func TestHeaderPersistedBeforeTop(t *testing.T) {
	// At every flush boundary during an allocation storm, the crash image
	// must parse below its persisted top.
	h, reg := testHeap(t, Config{DataSize: 1 << 20})
	p := definePerson(t, reg)
	for i := 0; i < 50; i++ {
		if _, err := h.Alloc(p, i%7); err != nil {
			t.Fatal(err)
		}
	}
	img := h.Device().CrashImage(nvm.CrashFlushedOnly, 1)
	re, err := Load(nvm.FromImage(img, nvm.Config{Mode: nvm.Tracked}), klass.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	err = re.ForEachObject(func(off int, k *klass.Klass, size int) bool {
		count++
		return true
	})
	if err != nil {
		t.Fatalf("crash image does not parse: %v", err)
	}
	if count == 0 {
		t.Fatal("no objects in reloaded image")
	}
}

func TestParseInvariantUnderRandomCrash(t *testing.T) {
	// Crash after the k-th flush for growing k; the persisted image must
	// always parse and every parsed object must be one we allocated (or a
	// filler).
	for _, crashAt := range []uint64{1, 3, 5, 8, 13, 21, 34, 55, 89} {
		func() {
			h, reg := testHeap(t, Config{DataSize: 1 << 20})
			p := definePerson(t, reg)
			faultdev.CrashAtFlush(h.Device(), crashAt)
			if _, err := faultdev.Run(h.Device(), func() error {
				for i := 0; i < 100; i++ {
					if _, err := h.Alloc(p, 0); err != nil {
						return nil
					}
				}
				return nil
			}); err != nil {
				t.Fatalf("crashAt=%d: %v", crashAt, err)
			}
			img := h.Device().CrashImage(nvm.CrashRandomEviction, int64(crashAt))
			re, err := Load(nvm.FromImage(img, nvm.Config{}), klass.NewRegistry())
			if err != nil {
				t.Fatalf("crashAt=%d: load: %v", crashAt, err)
			}
			if err := re.ForEachObject(func(off int, k *klass.Klass, size int) bool {
				if k.Name != "Person" && !IsFiller(k) {
					t.Fatalf("crashAt=%d: unexpected klass %s", crashAt, k.Name)
				}
				return true
			}); err != nil {
				t.Fatalf("crashAt=%d: parse: %v", crashAt, err)
			}
		}()
	}
}

func TestRegionBoundaryFiller(t *testing.T) {
	h, reg := testHeap(t, Config{DataSize: 1 << 20})
	// Allocate objects of a size that does not divide the region size so
	// boundary fillers must appear.
	big, _ := reg.Define(klass.MustInstance("Big", nil, manyFields(65)...)) // 544 bytes: does not divide the region size
	sz := big.SizeOf(0)
	n := layout.RegionSize/sz + 2
	for i := 0; i < n; i++ {
		if _, err := h.Alloc(big, 0); err != nil {
			t.Fatal(err)
		}
	}
	fillers, objs := 0, 0
	if err := h.ForEachObject(func(off int, k *klass.Klass, size int) bool {
		if IsFiller(k) {
			fillers++
		} else {
			objs++
		}
		// No object may straddle a region boundary.
		if off/layout.RegionSize != (off+size-1)/layout.RegionSize {
			t.Fatalf("object at %d size %d straddles regions", off, size)
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if objs != n || fillers == 0 {
		t.Fatalf("objs=%d (want %d) fillers=%d", objs, n, fillers)
	}
}

func manyFields(n int) []klass.Field {
	fs := make([]klass.Field, n)
	for i := range fs {
		fs[i] = klass.Field{Name: fmt.Sprintf("f%d", i), Type: layout.FTLong}
	}
	return fs
}

func TestHumongousAllocation(t *testing.T) {
	h, reg := testHeap(t, Config{DataSize: 4 << 20})
	p := definePerson(t, reg)
	if _, err := h.Alloc(p, 0); err != nil {
		t.Fatal(err)
	}
	hugeLen := (HugeThreshold + 1000) / 8
	huge, err := h.Alloc(reg.PrimArray(layout.FTLong), hugeLen)
	if err != nil {
		t.Fatal(err)
	}
	off := h.OffOf(huge)
	if off%layout.RegionSize != 0 {
		t.Fatalf("humongous object not region aligned: %d", off)
	}
	if _, err := h.Alloc(p, 0); err != nil {
		t.Fatal(err)
	}
	// The whole heap must still parse.
	if err := h.ForEachObject(func(int, *klass.Klass, int) bool { return true }); err != nil {
		t.Fatal(err)
	}
}

func TestOutOfMemory(t *testing.T) {
	h, reg := testHeap(t, Config{DataSize: layout.RegionSize}) // 1 region + scratch
	p := definePerson(t, reg)
	var err error
	for i := 0; i < 1<<20; i++ {
		if _, err = h.Alloc(p, 0); err != nil {
			break
		}
	}
	if err != ErrOutOfMemory {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestRootsRoundTrip(t *testing.T) {
	h, reg := testHeap(t, Config{})
	p := definePerson(t, reg)
	ref, _ := h.Alloc(p, 0)
	if err := h.SetRoot("jimmy", ref); err != nil {
		t.Fatal(err)
	}
	got, ok := h.GetRoot("jimmy")
	if !ok || got != ref {
		t.Fatalf("GetRoot = %#x %v", uint64(got), ok)
	}
	if _, ok := h.GetRoot("absent"); ok {
		t.Fatal("absent root found")
	}
	// Overwrite.
	ref2, _ := h.Alloc(p, 0)
	if err := h.SetRoot("jimmy", ref2); err != nil {
		t.Fatal(err)
	}
	if got, _ := h.GetRoot("jimmy"); got != ref2 {
		t.Fatal("root not updated")
	}
	roots := h.Roots()
	if len(roots) != 1 || roots[0].Name != "jimmy" || roots[0].Ref != ref2 {
		t.Fatalf("Roots = %+v", roots)
	}
	if !h.RemoveRoot("jimmy") {
		t.Fatal("RemoveRoot failed")
	}
	if _, ok := h.GetRoot("jimmy"); ok {
		t.Fatal("removed root still present")
	}
	// A tombstoned slot is reusable.
	if err := h.SetRoot("jimmy", ref); err != nil {
		t.Fatal(err)
	}
}

func TestSetRootRejectsForeignRef(t *testing.T) {
	h, _ := testHeap(t, Config{})
	if err := h.SetRoot("bad", layout.YoungBase+64); err == nil {
		t.Fatal("expected error for DRAM ref root")
	}
}

func TestRootSurvivesCrashAndReload(t *testing.T) {
	h, reg := testHeap(t, Config{})
	p := definePerson(t, reg)
	ref, _ := h.Alloc(p, 0)
	h.SetWord(ref, layout.FieldOff(0), 4242)
	h.FlushRange(ref, 0, p.SizeOf(0))
	if err := h.SetRoot("persist_me", ref); err != nil {
		t.Fatal(err)
	}
	img := h.Device().CrashImage(nvm.CrashFlushedOnly, 0)
	re, err := Load(nvm.FromImage(img, nvm.Config{}), klass.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	got, ok := re.GetRoot("persist_me")
	if !ok || got != ref {
		t.Fatalf("root lost after crash: %#x %v", uint64(got), ok)
	}
	if re.GetWord(got, layout.FieldOff(0)) != 4242 {
		t.Fatal("flushed field lost after crash")
	}
	// Klass re-initialization must have rebuilt Person from its record.
	k, err := re.KlassOf(got)
	if err != nil || k.Name != "Person" || k.NumFields() != 2 {
		t.Fatalf("reinitialized klass = %v %v", k, err)
	}
}

func TestInterruptedSetRootInvisible(t *testing.T) {
	// Crash at each flush boundary inside setRoot of a NEW name: after
	// reboot the root is either fully present or fully absent.
	for crashAt := uint64(1); crashAt <= 6; crashAt++ {
		h, reg := testHeap(t, Config{})
		p := definePerson(t, reg)
		ref, _ := h.Alloc(p, 0)
		faultdev.CrashIn(h.Device(), crashAt)
		if _, err := faultdev.Run(h.Device(), func() error {
			return h.SetRoot("maybe", ref)
		}); err != nil {
			t.Fatalf("crashAt=%d: %v", crashAt, err)
		}
		img := h.Device().CrashImage(nvm.CrashFlushedOnly, int64(crashAt))
		re, err := Load(nvm.FromImage(img, nvm.Config{}), klass.NewRegistry())
		if err != nil {
			t.Fatalf("crashAt=%d: %v", crashAt, err)
		}
		if got, ok := re.GetRoot("maybe"); ok && got != ref {
			t.Fatalf("crashAt=%d: torn root value %#x", crashAt, uint64(got))
		}
	}
}

func TestKlassEntriesInNameTable(t *testing.T) {
	h, reg := testHeap(t, Config{})
	p := definePerson(t, reg)
	if _, err := h.Alloc(p, 0); err != nil {
		t.Fatal(err)
	}
	addr, ok := h.KlassEntry("Person")
	if !ok {
		t.Fatal("klass entry missing")
	}
	k, ok := h.KlassByAddr(addr)
	if !ok || k.Name != "Person" {
		t.Fatalf("klass entry resolves to %v", k)
	}
}

func TestLoadRejectsBadImages(t *testing.T) {
	if _, err := Load(nvm.New(nvm.Config{Size: 64}), klass.NewRegistry()); err == nil {
		t.Fatal("tiny image accepted")
	}
	if _, err := Load(nvm.New(nvm.Config{Size: 1 << 20}), klass.NewRegistry()); err == nil {
		t.Fatal("zero image accepted")
	}
}

func TestReloadWithConflictingKlassFails(t *testing.T) {
	h, reg := testHeap(t, Config{})
	definePerson(t, reg)
	if _, err := h.Alloc(reg.MustLookup("Person"), 0); err != nil {
		t.Fatal(err)
	}
	h.Device().FlushAll()
	img := h.Device().CrashImage(nvm.CrashAllDirty, 0)

	// A registry where "Person" means something else must be rejected.
	reg2 := klass.NewRegistry()
	if _, err := reg2.Define(klass.MustInstance("Person", nil,
		klass.Field{Name: "other", Type: layout.FTInt})); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(nvm.FromImage(img, nvm.Config{}), reg2); err == nil {
		t.Fatal("conflicting klass layout accepted on reload")
	}
}

func TestRedoLogIdempotent(t *testing.T) {
	h, _ := testHeap(t, Config{})
	entries := []RedoEntry{
		{Off: h.RegionTopMetaOff(0), Val: uint64(h.Geo().DataOff + 4096)},
		{Off: h.GCActiveMetaOff(), Val: 0},
	}
	h.RedoCommit(entries)
	if !h.RedoPending() {
		t.Fatal("committed log not pending")
	}
	h.RedoApply()
	h.RefreshAfterRedo()
	if h.RedoPending() {
		t.Fatal("applied log still pending")
	}
	if h.RegionTop(0) != h.Geo().DataOff+4096 {
		t.Fatalf("region top after redo = %d", h.RegionTop(0))
	}
	if h.Top() != h.Geo().DataOff+4096 {
		t.Fatalf("top after redo = %d", h.Top())
	}
}

func TestRedoAppliedOnLoad(t *testing.T) {
	h, _ := testHeap(t, Config{})
	// A sealed region 0 (top at the region end, as the GC's finish batch
	// would publish for a fully occupied region).
	sealed := h.Geo().DataOff + layout.RegionSize
	h.RedoCommit([]RedoEntry{{Off: h.RegionTopMetaOff(0), Val: uint64(sealed)}})
	// Crash after commit, before apply.
	img := h.Device().CrashImage(nvm.CrashFlushedOnly, 0)
	re, err := Load(nvm.FromImage(img, nvm.Config{}), klass.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if re.RedoPending() {
		t.Fatal("load left redo log pending")
	}
	if re.Top() != sealed {
		t.Fatalf("redo not applied on load: top=%d", re.Top())
	}
}

func TestZeroingScanNullsForeignRefs(t *testing.T) {
	h, reg := testHeap(t, Config{})
	p := definePerson(t, reg)
	a, _ := h.Alloc(p, 0)
	b, _ := h.Alloc(p, 0)
	nameOff := layout.FieldOff(1)
	h.SetWord(a, nameOff, uint64(b))                    // intra-heap: kept
	h.SetWord(b, nameOff, uint64(layout.YoungBase+128)) // DRAM: nulled
	nulled, err := h.ZeroingScan(h.Contains)
	if err != nil {
		t.Fatal(err)
	}
	if nulled != 1 {
		t.Fatalf("nulled = %d, want 1", nulled)
	}
	if layout.Ref(h.GetWord(a, nameOff)) != b {
		t.Fatal("intra-heap ref was nulled")
	}
	if h.GetWord(b, nameOff) != 0 {
		t.Fatal("DRAM ref survived zeroing scan")
	}
}

func TestBitmapBasics(t *testing.T) {
	h, _ := testHeap(t, Config{})
	bm := h.MarkBitmap()
	for _, i := range []int{0, 1, 63, 64, 65, 1000} {
		bm.Set(i)
	}
	if bm.CountSet() != 6 {
		t.Fatalf("CountSet = %d", bm.CountSet())
	}
	if got := bm.NextSet(2); got != 63 {
		t.Fatalf("NextSet(2) = %d", got)
	}
	if got := bm.NextSet(66); got != 1000 {
		t.Fatalf("NextSet(66) = %d", got)
	}
	if got := bm.NextSet(1001); got != -1 {
		t.Fatalf("NextSet(1001) = %d", got)
	}
	bm.Clear(63)
	if bm.Get(63) {
		t.Fatal("Clear failed")
	}
	bm.ClearAll()
	if bm.CountSet() != 0 {
		t.Fatal("ClearAll failed")
	}
}

func TestQuickBitmapMatchesModel(t *testing.T) {
	h, _ := testHeap(t, Config{})
	bm := h.RegionBitmap()
	f := func(ops []uint16) bool {
		bm.ClearAll()
		model := map[int]bool{}
		for _, op := range ops {
			i := int(op) % bm.Len()
			if op%2 == 0 {
				bm.Set(i)
				model[i] = true
			} else {
				bm.Clear(i)
				delete(model, i)
			}
		}
		for i := 0; i < bm.Len(); i++ {
			if bm.Get(i) != model[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAllocationAlwaysParses(t *testing.T) {
	// Random allocation sequences (mixed shapes and sizes, including
	// occasional humongous arrays) keep the heap parseable, and the parsed
	// object multiset matches what was allocated.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h, reg := testHeap(t, Config{DataSize: 2 << 20})
		p := definePerson(t, reg)
		type rec struct {
			ref  layout.Ref
			name string
		}
		var allocated []rec
		for i := 0; i < 200; i++ {
			var ref layout.Ref
			var err error
			var name string
			switch rng.Intn(4) {
			case 0:
				ref, err = h.Alloc(p, 0)
				name = "Person"
			case 1:
				n := rng.Intn(100)
				ref, err = h.Alloc(reg.PrimArray(layout.FTByte), n)
				name = "[byte"
			case 2:
				n := rng.Intn(50)
				ref, err = h.Alloc(reg.ObjArray("Person"), n)
				name = "[LPerson;"
			case 3:
				n := HugeThreshold/8 + rng.Intn(100)
				ref, err = h.Alloc(reg.PrimArray(layout.FTLong), n)
				name = "[long"
			}
			if err != nil {
				break
			}
			allocated = append(allocated, rec{ref, name})
		}
		i := 0
		ok := true
		err := h.ForEachObject(func(off int, k *klass.Klass, size int) bool {
			if IsFiller(k) {
				return true
			}
			if i >= len(allocated) || h.AddrOf(off) != allocated[i].ref || k.Name != allocated[i].name {
				ok = false
				return false
			}
			i++
			return true
		})
		return err == nil && ok && i == len(allocated)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestNameTableFillsUp(t *testing.T) {
	h, _ := testHeap(t, Config{NameTabCap: 8})
	p := definePerson(t, h.Registry())
	ref, _ := h.Alloc(p, 0)
	var err error
	for i := 0; i < 16; i++ {
		if err = h.SetRoot(fmt.Sprintf("root%d", i), ref); err != nil {
			break
		}
	}
	if err == nil {
		t.Fatal("expected name-table-full error")
	}
}
