package pheap

import (
	"fmt"

	"espresso/internal/klass"
	"espresso/internal/layout"
)

// The Klass segment stores serialized Klass records. A record's address is
// the value object headers carry in their klass word, so records are
// immortal and never move; on load they are "re-initialized in place" by
// re-binding each record to a runtime Klass descriptor (paper §3.3).
//
// Record append protocol: write the record bytes, flush them, fence, then
// persist the bumped ksegUsed. A crash before the bump leaves the bytes
// unreachable (the next append overwrites them); a crash after the bump
// exposes only fully persisted records.

// EnsureKlass returns the Klass-record address for k, appending a record
// (and its superclasses' records, transitively) on first use — the paper's
// "set by JVM when an object is created in NVM while its Klass does not
// exist in the Klass segment".
func (h *Heap) EnsureKlass(k *klass.Klass) (layout.Ref, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ensureKlassLocked(k)
}

func (h *Heap) ensureKlassLocked(k *klass.Klass) (layout.Ref, error) {
	h.kmu.RLock()
	addr, ok := h.segByName[k.Name]
	h.kmu.RUnlock()
	if ok {
		return addr, nil
	}
	if k.Super != nil {
		if _, err := h.ensureKlassLocked(k.Super); err != nil {
			return 0, err
		}
	}
	rec := klass.EncodeRecord(k)
	if h.ksegUsed+len(rec) > h.geo.KsegSize {
		return 0, fmt.Errorf("pheap: klass segment full while adding %s", k.Name)
	}
	off := h.geo.KsegOff + h.ksegUsed
	h.dev.WriteBytes(off, rec)
	h.dev.Flush(off, len(rec))
	h.dev.Fence()
	h.ksegUsed += len(rec)
	h.persistU64(mKsegUsed, uint64(h.ksegUsed))

	addr = h.AddrOf(off)
	h.kmu.Lock()
	h.segByAddr[addr] = k
	h.segByName[k.Name] = addr
	h.kmu.Unlock()
	if err := h.putEntryLocked(EntryKlass, k.Name, uint64(addr)); err != nil {
		return 0, err
	}
	return addr, nil
}

// reinitKlasses walks the segment on load, materializing each record into
// a registry Klass (defining it if the application has not) and rebuilding
// the address maps. Load cost is proportional to the number of Klasses.
func (h *Heap) reinitKlasses() error {
	off := h.geo.KsegOff
	end := h.geo.KsegOff + h.ksegUsed
	for off < end {
		ri, size, err := klass.DecodeRecord(h.dev.View(off, end-off))
		if err != nil {
			return fmt.Errorf("pheap: klass segment at +%d: %w", off-h.geo.KsegOff, err)
		}
		if size == 0 {
			return fmt.Errorf("pheap: klass segment truncated at +%d", off-h.geo.KsegOff)
		}
		k, err := ri.ToKlass(func(super string) (*klass.Klass, error) {
			if sk, ok := h.reg.Lookup(super); ok {
				return sk, nil
			}
			return nil, fmt.Errorf("pheap: klass %s: superclass %s not seen before it", ri.Name, super)
		})
		if err != nil {
			return err
		}
		canon, err := h.reg.Define(k)
		if err != nil {
			return fmt.Errorf("pheap: reinitializing %s: %w", ri.Name, err)
		}
		addr := h.AddrOf(off)
		h.kmu.Lock()
		h.segByAddr[addr] = canon
		h.segByName[canon.Name] = addr
		h.kmu.Unlock()
		off += size
	}
	return nil
}

// KlassByAddr resolves a Klass-record address (an object's klass word)
// to its runtime descriptor.
func (h *Heap) KlassByAddr(addr layout.Ref) (*klass.Klass, bool) {
	h.kmu.RLock()
	k, ok := h.segByAddr[addr]
	h.kmu.RUnlock()
	return k, ok
}

// KlassAddr reports the record address of a klass already present in the
// segment.
func (h *Heap) KlassAddr(k *klass.Klass) (layout.Ref, bool) {
	h.kmu.RLock()
	addr, ok := h.segByName[k.Name]
	h.kmu.RUnlock()
	return addr, ok
}

// KlassCount reports how many Klass records the segment holds.
func (h *Heap) KlassCount() int {
	h.kmu.RLock()
	defer h.kmu.RUnlock()
	return len(h.segByAddr)
}
