package pheap

import (
	"fmt"

	"espresso/internal/layout"
	"espresso/internal/nvm"
	"espresso/internal/telemetry/blackbox"
)

// ScrubReport is the result of a read-only integrity walk over a raw
// heap image. Findings list detected corruption; an empty list on a
// checksummed image means every verifiable structure verified.
type ScrubReport struct {
	FormatVersion uint64 `json:"format_version"`
	GCActive      bool   `json:"gc_active"`
	RedoPending   bool   `json:"redo_pending"`
	// Checksummed reports whether the image carries v5 metadata
	// checksums; pre-v5 images scrub structurally only.
	Checksummed bool `json:"checksummed"`
	// RegionsChecked counts region-top lines verified.
	RegionsChecked int `json:"regions_checked"`
	// Findings describes each detected corruption, one line per fault.
	Findings []string `json:"findings,omitempty"`
}

// Corrupt reports whether the scrub found anything.
func (r *ScrubReport) Corrupt() bool { return len(r.Findings) > 0 }

// Scrub verifies a raw heap image's metadata checksums without loading
// (or mutating) it — Load would upgrade formats, apply redo batches,
// and plug regions, all wrong for an image under investigation. A
// committed-pending redo batch with a valid checksum is healthy (a
// crash between commit and apply is a designed-for state), so scrub
// validates it rather than flagging it. Returns an error only for
// unreadable images; corruption lands in the report's findings.
func Scrub(dev *nvm.Device) (*ScrubReport, error) {
	if dev.Size() < metadataBytes {
		return nil, fmt.Errorf("pheap: image too small")
	}
	if dev.ReadU64(mMagic) != heapMagic {
		return nil, fmt.Errorf("pheap: bad heap magic")
	}
	v := dev.ReadU64(mVersion)
	if v < heapVersionPLAB || v > heapVersion {
		return nil, fmt.Errorf("pheap: unsupported heap version %d", v)
	}
	if sz := dev.ReadU64(mDeviceSize); int(sz) != dev.Size() {
		return nil, fmt.Errorf("pheap: image size %d does not match metadata %d", dev.Size(), sz)
	}
	geo := Geometry{
		NameTabOff: int(dev.ReadU64(mNameTabOff)), NameTabCap: int(dev.ReadU64(mNameTabCap)),
		ArenaOff: int(dev.ReadU64(mArenaOff)), ArenaSize: int(dev.ReadU64(mArenaSize)),
		RedoOff: int(dev.ReadU64(mRedoOff)), RedoSize: int(dev.ReadU64(mRedoSize)),
		MarkBmpOff: int(dev.ReadU64(mMarkBmpOff)), MarkBmpSize: int(dev.ReadU64(mMarkBmpSize)),
		RegionBmpOff: int(dev.ReadU64(mRegionBmpOff)), RegionBmpSize: int(dev.ReadU64(mRegionBmpSize)),
		RegionTopOff: int(dev.ReadU64(mRegionTopOff)), RegionTopSize: int(dev.ReadU64(mRegionTopSize)),
		KsegOff: int(dev.ReadU64(mKsegOff)), KsegSize: int(dev.ReadU64(mKsegSize)),
		BlackboxOff: int(dev.ReadU64(mBlackboxOff)), BlackboxSize: int(dev.ReadU64(mBlackboxSize)),
		DataOff: int(dev.ReadU64(mDataOff)), DataSize: int(dev.ReadU64(mDataSize)),
		ScratchOff: int(dev.ReadU64(mScratchOff)),
	}
	if err := geo.sanity(dev.Size()); err != nil {
		return nil, err
	}

	rep := &ScrubReport{
		FormatVersion: v,
		GCActive:      dev.ReadU64(mGCActive) != 0,
		RedoPending:   dev.ReadU64(geo.RedoOff) == 1,
		Checksummed:   v >= heapVersionChecksum,
	}
	finding := func(format string, args ...any) {
		rep.Findings = append(rep.Findings, fmt.Sprintf(format, args...))
	}

	// GC-phase word: range-checked on every format, checksummed on v5.
	phase := dev.ReadU64(mGCPhase)
	if phase > GCPhaseConcurrentMark {
		finding("gc-phase: word %d out of range", phase)
	} else if rep.Checksummed && dev.ReadU64(mGCPhaseSum) != gcPhaseSum(phase) {
		finding("gc-phase: checksum mismatch (word %d)", phase)
	}

	// Redo log: the state word must decode; a committed batch must carry
	// a verifiable checksum.
	state := dev.ReadU64(geo.RedoOff)
	switch {
	case state > 1:
		finding("redo: state word %d undecodable", state)
	case state == 1:
		count := int(dev.ReadU64(geo.RedoOff + 8))
		capacity := (geo.RedoSize - 24) / 16
		if count < 0 || count > capacity {
			finding("redo: committed batch count %d exceeds capacity %d", count, capacity)
		} else if rep.Checksummed && dev.ReadU64(geo.RedoOff+geo.RedoSize-8) != redoSumAt(dev, geo, count) {
			finding("redo: committed batch of %d entries fails its checksum", count)
		}
	}

	// Region-top table: every line either untouched (all zero) or
	// checksum-valid (v5), and structurally plausible on any format.
	for r := 0; r < geo.Regions(); r++ {
		off := geo.RegionTopOff + r*layout.RegionTopStride
		top := dev.ReadU64(off)
		sum := dev.ReadU64(off + 8)
		rep.RegionsChecked++
		if rep.Checksummed {
			if !regionTopLineValid(r, top, sum) {
				finding("region %d: top line fails its checksum (top %#x)", r, top)
				continue
			}
		}
		start := uint64(geo.DataOff + r*layout.RegionSize)
		if top != 0 && top != regionTopHumongousCont && (top <= start || top > uint64(geo.DataOff+geo.DataSize)) {
			finding("region %d: top %#x outside its plausible range", r, top)
		}
	}

	// Flight-recorder ring: Decode already implements detect-don't-
	// fabricate; a header that fails to decode is a finding, torn or
	// invalid records are not (the ring is designed to lose its tail).
	if geo.BlackboxSize > 0 {
		if _, err := blackbox.Decode(dev, geo.BlackboxOff, geo.BlackboxSize); err != nil {
			finding("blackbox: ring undecodable: %v", err)
		}
	}
	return rep, nil
}
