package pheap

import (
	"fmt"

	"espresso/internal/layout"
)

// The name table (paper §3.1) maps string constants to Klass entries and
// root entries. It is an open-addressing hash table whose 64-byte entries
// each occupy exactly one cache line, so an insert commits with a single
// flush of the entry line after its name bytes are persisted in the arena:
//
//	entry := { state u64; hash u64; kind u64; nameLen u64;
//	           nameOff u64; value u64; pad u64[2] }
//
// state is written last; a crash mid-insert leaves state==0 and the slot
// reads as empty. Updating an existing entry overwrites only the 8-byte
// value, which persists atomically.
const nameEntryBytes = 64

const (
	entryStateEmpty     = 0
	entryStateCommitted = 1
	entryStateTombstone = 2
)

// Entry kinds.
const (
	// EntryKlass maps a class name to its Klass record address.
	EntryKlass = 1
	// EntryRoot maps a root name to a root object address (paper: "the
	// only known entry points to access the objects in data heap").
	EntryRoot = 2
)

func nameHash(name string) uint64 {
	// FNV-1a.
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	if h == 0 {
		h = 1
	}
	return h
}

func (h *Heap) entryOff(slot int) int { return h.geo.NameTabOff + slot*nameEntryBytes }

// findSlot probes for (kind, name). It returns the matching slot, or the
// first insertable slot and found=false.
func (h *Heap) findSlot(kind uint64, name string) (slot int, found bool, err error) {
	hash := nameHash(name)
	cap := h.geo.NameTabCap
	insertAt := -1
	for i := 0; i < cap; i++ {
		s := int((hash + uint64(i)) % uint64(cap))
		off := h.entryOff(s)
		switch h.dev.ReadU64(off) {
		case entryStateEmpty:
			if insertAt < 0 {
				insertAt = s
			}
			return insertAt, false, nil
		case entryStateTombstone:
			if insertAt < 0 {
				insertAt = s
			}
		case entryStateCommitted:
			if h.dev.ReadU64(off+8) == hash && h.dev.ReadU64(off+16) == kind {
				nameLen := int(h.dev.ReadU64(off + 24))
				nameOff := int(h.dev.ReadU64(off + 32))
				if nameLen == len(name) && string(h.dev.View(nameOff, nameLen)) == name {
					return s, true, nil
				}
			}
		}
	}
	if insertAt >= 0 {
		return insertAt, false, nil
	}
	return 0, false, fmt.Errorf("pheap: name table full (%d entries)", cap)
}

// putEntry inserts or updates (kind, name) → value with the crash-safe
// commit protocol described above.
func (h *Heap) putEntry(kind uint64, name string, value uint64) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.putEntryLocked(kind, name, value)
}

func (h *Heap) putEntryLocked(kind uint64, name string, value uint64) error {
	slot, found, err := h.findSlot(kind, name)
	if err != nil {
		return err
	}
	off := h.entryOff(slot)
	if found {
		h.dev.WriteU64(off+40, value)
		h.dev.Flush(off+40, 8)
		h.dev.Fence()
		return nil
	}
	// New entry: persist the name bytes first, then the entry line with
	// state written last.
	if h.arenaUsed+len(name) > h.geo.ArenaSize {
		return fmt.Errorf("pheap: name arena full")
	}
	nameOff := h.geo.ArenaOff + h.arenaUsed
	h.dev.WriteBytes(nameOff, []byte(name))
	h.dev.Flush(nameOff, len(name))
	h.dev.Fence()
	h.arenaUsed += len(name)
	h.persistU64(mArenaUsed, uint64(h.arenaUsed))

	h.dev.WriteU64(off+8, nameHash(name))
	h.dev.WriteU64(off+16, kind)
	h.dev.WriteU64(off+24, uint64(len(name)))
	h.dev.WriteU64(off+32, uint64(nameOff))
	h.dev.WriteU64(off+40, value)
	h.dev.WriteU64(off, entryStateCommitted) // commit point
	h.dev.Flush(off, nameEntryBytes)
	h.dev.Fence()
	return nil
}

// getEntry looks up (kind, name).
func (h *Heap) getEntry(kind uint64, name string) (uint64, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	slot, found, err := h.findSlot(kind, name)
	if err != nil || !found {
		return 0, false
	}
	return h.dev.ReadU64(h.entryOff(slot) + 40), true
}

// SetRoot marks the object at ref as a root under the given name
// (Table 1: setRoot).
func (h *Heap) SetRoot(name string, ref layout.Ref) error {
	if ref != layout.NullRef && !h.Contains(ref) {
		return fmt.Errorf("pheap: setRoot %q: %#x is not in this heap", name, uint64(ref))
	}
	return h.putEntry(EntryRoot, name, uint64(ref))
}

// GetRoot fetches a root object address (Table 1: getRoot). The second
// result reports whether the root exists.
func (h *Heap) GetRoot(name string) (layout.Ref, bool) {
	v, ok := h.getEntry(EntryRoot, name)
	return layout.Ref(v), ok
}

// RemoveRoot tombstones a root entry so its object may be collected.
func (h *Heap) RemoveRoot(name string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	slot, found, err := h.findSlot(EntryRoot, name)
	if err != nil || !found {
		return false
	}
	off := h.entryOff(slot)
	h.dev.WriteU64(off, entryStateTombstone)
	h.dev.Flush(off, 8)
	h.dev.Fence()
	return true
}

// Root describes one root entry.
type Root struct {
	Name string
	Ref  layout.Ref
	// ValueOff is the device offset of the entry's value word; the GC
	// patches it through the redo log when the root object moves.
	ValueOff int
}

// Roots lists all committed root entries.
func (h *Heap) Roots() []Root {
	h.mu.Lock()
	defer h.mu.Unlock()
	var roots []Root
	for s := 0; s < h.geo.NameTabCap; s++ {
		off := h.entryOff(s)
		if h.dev.ReadU64(off) != entryStateCommitted || h.dev.ReadU64(off+16) != EntryRoot {
			continue
		}
		nameLen := int(h.dev.ReadU64(off + 24))
		nameOff := int(h.dev.ReadU64(off + 32))
		roots = append(roots, Root{
			Name:     string(h.dev.View(nameOff, nameLen)),
			Ref:      layout.Ref(h.dev.ReadU64(off + 40)),
			ValueOff: off + 40,
		})
	}
	return roots
}

// setKlassEntry records a class-name → Klass-record-address mapping.
func (h *Heap) setKlassEntry(name string, recAddr layout.Ref) error {
	return h.putEntry(EntryKlass, name, uint64(recAddr))
}

// KlassEntry looks up the Klass record address for a class name.
func (h *Heap) KlassEntry(name string) (layout.Ref, bool) {
	v, ok := h.getEntry(EntryKlass, name)
	return layout.Ref(v), ok
}
