package pheap

import (
	"fmt"
	"sync"
	"testing"

	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/nvm"
	"espresso/internal/nvm/faultdev"
)

// PLAB allocator tests: parallel-allocation stress (the race job's
// dedicated target), crash injection across region handoff and retire,
// and the reload rules for half-open regions.

// TestParallelAllocStress is the dedicated -race stress test: several
// mutators bump-allocate concurrently through their own Allocators while
// the shared Alloc path runs alongside, then the heap must parse and
// contain exactly the allocated objects.
func TestParallelAllocStress(t *testing.T) {
	const goroutines = 8
	const perG = 400
	h, reg := testHeap(t, Config{DataSize: 32 << 20})
	p := definePerson(t, reg)
	bytes := reg.PrimArray(layout.FTByte)
	// Warm the klass segment so mutators race only on the fast paths.
	warm1, err := h.Alloc(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	warm2, err := h.Alloc(bytes, 8)
	if err != nil {
		t.Fatal(err)
	}

	refs := make([][]layout.Ref, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var (
				ref layout.Ref
				err error
			)
			if g%4 == 3 {
				// One lane exercises the shared (default-allocator) path
				// concurrently with the PLAB lanes.
				for i := 0; i < perG; i++ {
					if ref, err = h.Alloc(p, 0); err != nil {
						t.Errorf("goroutine %d: %v", g, err)
						return
					}
					refs[g] = append(refs[g], ref)
				}
				return
			}
			a := h.NewAllocator()
			defer a.Release()
			for i := 0; i < perG; i++ {
				if i%3 == 0 {
					ref, err = a.Alloc(bytes, 64+i%128)
				} else {
					ref, err = a.Alloc(p, 0)
					if err == nil {
						h.SetWord(ref, layout.FieldOff(0), uint64(g)<<32|uint64(i))
					}
				}
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				refs[g] = append(refs[g], ref)
			}
		}(g)
	}
	wg.Wait()

	allocated := map[layout.Ref]bool{warm1: true, warm2: true}
	for _, rs := range refs {
		for _, r := range rs {
			if allocated[r] {
				t.Fatalf("duplicate ref %#x", uint64(r))
			}
			allocated[r] = true
		}
	}
	seen := 0
	if err := h.ForEachObject(func(off int, k *klass.Klass, size int) bool {
		if IsFiller(k) {
			return true
		}
		if !allocated[h.AddrOf(off)] {
			t.Fatalf("parsed unallocated object %s at %d", k.Name, off)
		}
		seen++
		return true
	}); err != nil {
		t.Fatalf("parallel heap does not parse: %v", err)
	}
	if want := goroutines*perG + 2; seen != want {
		t.Fatalf("parsed %d objects, want %d", seen, want)
	}
}

// TestPLABCrashAtEveryFlushDuringHandoff drives the flush-hook crash
// injector through PLAB region overflow and handoff: one mutator
// allocates objects sized so each region fits only a few, forcing
// retire-plug-redispense cycles; crashing at every flush boundary must
// leave an image whose regions parse exactly up to their persisted tops,
// exposing only fully allocated objects (plus at most the one in-flight
// allocation whose top persist was the crash point).
func TestPLABCrashAtEveryFlushDuringHandoff(t *testing.T) {
	// 65 long fields → 544 bytes: does not divide the region size, so
	// every region ends in a retire filler.
	bigFields := manyFields(65)
	for crashAt := uint64(2); crashAt < 90; crashAt += 3 {
		h, reg := testHeap(t, Config{DataSize: 1 << 20})
		big, err := reg.Define(klass.MustInstance("Big", nil, bigFields...))
		if err != nil {
			t.Fatal(err)
		}
		a := h.NewAllocator()
		var recorded []layout.Ref
		faultdev.CrashIn(h.Device(), crashAt)
		if _, err := faultdev.Run(h.Device(), func() error {
			for i := 0; i < 3*layout.RegionSize/big.SizeOf(0); i++ {
				ref, err := a.Alloc(big, 0)
				if err != nil {
					return nil
				}
				recorded = append(recorded, ref)
			}
			return nil
		}); err != nil {
			t.Fatalf("crashAt=%d: %v", crashAt, err)
		}

		img := h.Device().CrashImage(nvm.CrashRandomEviction, int64(crashAt))
		re, err := Load(nvm.FromImage(img, nvm.Config{Mode: nvm.Tracked}), klass.NewRegistry())
		if err != nil {
			t.Fatalf("crashAt=%d: load: %v", crashAt, err)
		}
		surviving := make(map[layout.Ref]bool)
		if err := re.ForEachObject(func(off int, k *klass.Klass, size int) bool {
			if IsFiller(k) {
				return true
			}
			if k.Name != "Big" {
				t.Fatalf("crashAt=%d: unexpected klass %s at %d", crashAt, k.Name, off)
			}
			surviving[re.AddrOf(off)] = true
			return true
		}); err != nil {
			t.Fatalf("crashAt=%d: crash image does not parse: %v", crashAt, err)
		}
		// Every allocation that returned before the crash was published
		// (its region top persisted), so it must survive; the walk may
		// additionally surface the single in-flight allocation.
		for _, ref := range recorded {
			if !surviving[ref] {
				t.Fatalf("crashAt=%d: returned object %#x lost", crashAt, uint64(ref))
			}
		}
		if len(surviving) > len(recorded)+1 {
			t.Fatalf("crashAt=%d: %d objects parsed, only %d allocated",
				crashAt, len(surviving), len(recorded))
		}
	}
}

// TestReloadTruncatesAtPersistedRegionTop pins the publication order: an
// object whose header is persisted but whose region top is not must be
// invisible after reload — recovery truncates each region exactly at its
// persisted top.
func TestReloadTruncatesAtPersistedRegionTop(t *testing.T) {
	h, reg := testHeap(t, Config{})
	p := definePerson(t, reg)
	a := h.NewAllocator()
	first, err := a.Alloc(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Crash on the next flush after the header flush of the second
	// allocation: the header is durable, the region top still points at
	// the end of the first object.
	faultdev.CrashIn(h.Device(), 1)
	if _, err := faultdev.Run(h.Device(), func() error {
		_, _ = a.Alloc(p, 0)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	img := h.Device().CrashImage(nvm.CrashFlushedOnly, 0)
	re, err := Load(nvm.FromImage(img, nvm.Config{}), klass.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := re.ForEachObject(func(off int, k *klass.Klass, size int) bool {
		if !IsFiller(k) {
			count++
			if re.AddrOf(off) != first {
				t.Fatalf("unexpected survivor at %d", off)
			}
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("parsed %d objects below persisted top, want 1 (the published one)", count)
	}
}

// TestReloadPlugsHalfOpenPLAB: loading a clean image seals every
// half-open PLAB region — the tail above the persisted top becomes a
// filler and the region's top moves to its end, so the reloaded heap
// parses whole regions and fresh allocation starts elsewhere.
func TestReloadPlugsHalfOpenPLAB(t *testing.T) {
	h, reg := testHeap(t, Config{})
	p := definePerson(t, reg)
	a := h.NewAllocator()
	var refs []layout.Ref
	for i := 0; i < 10; i++ {
		ref, err := a.Alloc(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, ref)
	}
	img := h.Device().CrashImage(nvm.CrashFlushedOnly, 0)
	re, err := Load(nvm.FromImage(img, nvm.Config{Mode: nvm.Tracked}), klass.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	geo := re.Geo()
	if got := re.RegionTop(0); got != geo.DataOff+layout.RegionSize {
		t.Fatalf("half-open region not sealed: top = %d", got)
	}
	objs, fillers := 0, 0
	if err := re.ForEachObject(func(off int, k *klass.Klass, size int) bool {
		if IsFiller(k) {
			fillers++
		} else {
			objs++
		}
		return true
	}); err != nil {
		t.Fatalf("sealed region does not parse: %v", err)
	}
	if objs != len(refs) || fillers == 0 {
		t.Fatalf("objs=%d (want %d), fillers=%d (want ≥1)", objs, len(refs), fillers)
	}
	// The plug itself must be durable: crash the reloaded image again
	// without any further flushes and it must still parse.
	img2 := re.Device().CrashImage(nvm.CrashFlushedOnly, 0)
	re2, err := Load(nvm.FromImage(img2, nvm.Config{}), klass.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if err := re2.ForEachObject(func(int, *klass.Klass, int) bool { return true }); err != nil {
		t.Fatalf("replug image does not parse: %v", err)
	}
	// New allocation lands above the sealed region, never inside it.
	a2 := re.NewAllocator()
	ref, err := a2.Alloc(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if off := re.OffOf(ref); off < geo.DataOff+layout.RegionSize {
		t.Fatalf("post-reload allocation at %d, inside the sealed region", off)
	}
}

// TestReleaseHandsPartialRegionToNextAllocator: a released allocator's
// PLAB headroom is reusable — the next allocator resumes bumping in the
// same region at the next cache-line boundary, with the handoff sliver
// plugged so the region still parses and the new owner never writes a
// line the old owner's objects occupy.
func TestReleaseHandsPartialRegionToNextAllocator(t *testing.T) {
	h, reg := testHeap(t, Config{})
	p := definePerson(t, reg)
	a := h.NewAllocator()
	ref1, err := a.Alloc(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	a.Release()
	b := h.NewAllocator()
	ref2, err := b.Alloc(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	end1 := h.OffOf(ref1) + p.SizeOf(0)
	wantOff := (end1 + layout.LineSize - 1) &^ (layout.LineSize - 1)
	if h.OffOf(ref2) != wantOff {
		t.Fatalf("second allocator at %d, want line-padded handoff at %d", h.OffOf(ref2), wantOff)
	}
	if h.OffOf(ref2)/layout.RegionSize != h.OffOf(ref1)/layout.RegionSize {
		t.Fatal("handoff left the region instead of reusing it")
	}
	objs, fillers := 0, 0
	if err := h.ForEachObject(func(off int, k *klass.Klass, size int) bool {
		if IsFiller(k) {
			fillers++
		} else {
			objs++
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if objs != 2 || fillers != 1 {
		t.Fatalf("objs=%d fillers=%d, want 2 objects and the handoff filler", objs, fillers)
	}
}

// TestHumongousRegionTopEncoding: a humongous run publishes its head
// region's top at the run end and sentinels its interior regions; the
// walk crosses the run and reload preserves it, interleaved with PLAB
// objects.
func TestHumongousRegionTopEncoding(t *testing.T) {
	h, reg := testHeap(t, Config{DataSize: 4 << 20})
	p := definePerson(t, reg)
	a := h.NewAllocator()
	small1, err := a.Alloc(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	hugeLen := (layout.RegionSize + layout.RegionSize/2) / 8 // spans 2 regions
	huge, err := a.Alloc(reg.PrimArray(layout.FTLong), hugeLen)
	if err != nil {
		t.Fatal(err)
	}
	small2, err := a.Alloc(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	hugeOff := h.OffOf(huge)
	if hugeOff%layout.RegionSize != 0 {
		t.Fatalf("humongous object not region aligned: %d", hugeOff)
	}
	r0 := (hugeOff - h.Geo().DataOff) / layout.RegionSize
	runEnd := hugeOff + 2*layout.RegionSize
	if got := h.RegionTop(r0); got != runEnd {
		t.Fatalf("head region top = %d, want run end %d", got, runEnd)
	}
	if got := h.RegionTop(r0 + 1); got != regionTopHumongousCont {
		t.Fatalf("interior region top = %d, want sentinel", got)
	}

	for _, heap := range []*Heap{h, reload(t, h)} {
		var got []layout.Ref
		if err := heap.ForEachObject(func(off int, k *klass.Klass, size int) bool {
			if !IsFiller(k) {
				got = append(got, heap.AddrOf(off))
			}
			return true
		}); err != nil {
			t.Fatal(err)
		}
		want := []layout.Ref{small1, huge, small2}
		if len(got) != len(want) {
			t.Fatalf("parsed %d objects, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("object %d = %#x, want %#x", i, uint64(got[i]), uint64(want[i]))
			}
		}
	}
}

func reload(t *testing.T, h *Heap) *Heap {
	t.Helper()
	img := h.Device().CrashImage(nvm.CrashFlushedOnly, 0)
	re, err := Load(nvm.FromImage(img, nvm.Config{}), klass.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	return re
}

// TestPLABOverflowSealsRegion: when a PLAB cannot fit the next object,
// the region is plugged and sealed before the allocation continues in a
// fresh region — verified by parsing and by the sealed top.
func TestPLABOverflowSealsRegion(t *testing.T) {
	h, reg := testHeap(t, Config{DataSize: 1 << 20})
	big, err := reg.Define(klass.MustInstance("Big2", nil, manyFields(65)...))
	if err != nil {
		t.Fatal(err)
	}
	a := h.NewAllocator()
	perRegion := layout.RegionSize / big.SizeOf(0)
	for i := 0; i < perRegion+1; i++ {
		if _, err := a.Alloc(big, 0); err != nil {
			t.Fatal(err)
		}
	}
	geo := h.Geo()
	if got := h.RegionTop(0); got != geo.DataOff+layout.RegionSize {
		t.Fatalf("overflowed region top = %d, want sealed at %d", got, geo.DataOff+layout.RegionSize)
	}
	fillers := 0
	if err := h.ForEachObject(func(off int, k *klass.Klass, size int) bool {
		if IsFiller(k) {
			fillers++
			if off/layout.RegionSize != (off+size-1)/layout.RegionSize {
				t.Fatalf("filler at %d size %d straddles regions", off, size)
			}
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if fillers == 0 {
		t.Fatal("no retire filler found")
	}
}

// TestDispenserOOMAcrossAllocators: capacity exhaustion is reported as
// ErrOutOfMemory no matter which allocator hits it.
func TestDispenserOOMAcrossAllocators(t *testing.T) {
	h, reg := testHeap(t, Config{DataSize: layout.RegionSize}) // 1 region + scratch
	p := definePerson(t, reg)
	a, b := h.NewAllocator(), h.NewAllocator()
	var err error
	for i := 0; ; i++ {
		alloc := a
		if i%2 == 1 {
			alloc = b
		}
		if _, err = alloc.Alloc(p, 0); err != nil {
			break
		}
		if i > 1<<20 {
			t.Fatal("allocation never failed")
		}
	}
	if err != ErrOutOfMemory {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
}

// TestCrashDuringLoadPlug: crashing while Load seals a half-open region
// leaves an image that still loads and parses — the plug is idempotent.
func TestCrashDuringLoadPlug(t *testing.T) {
	h, reg := testHeap(t, Config{})
	p := definePerson(t, reg)
	a := h.NewAllocator()
	for i := 0; i < 5; i++ {
		if _, err := a.Alloc(p, 0); err != nil {
			t.Fatal(err)
		}
	}
	img := h.Device().CrashImage(nvm.CrashFlushedOnly, 0)
	for crashAt := uint64(1); crashAt <= 2; crashAt++ {
		dev := nvm.FromImage(append([]byte(nil), img...), nvm.Config{Mode: nvm.Tracked})
		faultdev.CrashIn(dev, crashAt)
		if _, err := faultdev.Run(dev, func() error {
			_, _ = Load(dev, klass.NewRegistry())
			return nil
		}); err != nil {
			t.Fatalf("crashAt=%d: %v", crashAt, err)
		}
		img2 := dev.CrashImage(nvm.CrashRandomEviction, int64(crashAt))
		re, err := Load(nvm.FromImage(img2, nvm.Config{}), klass.NewRegistry())
		if err != nil {
			t.Fatalf("crashAt=%d: %v", crashAt, err)
		}
		objs := 0
		if err := re.ForEachObject(func(off int, k *klass.Klass, size int) bool {
			if !IsFiller(k) {
				objs++
			}
			return true
		}); err != nil {
			t.Fatalf("crashAt=%d: %v", crashAt, err)
		}
		if objs != 5 {
			t.Fatalf("crashAt=%d: %d objects, want 5", crashAt, objs)
		}
	}
}

func TestAllocatorStatsCount(t *testing.T) {
	h, reg := testHeap(t, Config{})
	p := definePerson(t, reg)
	a := h.NewAllocator()
	for i := 0; i < 10; i++ {
		if _, err := a.Alloc(p, 0); err != nil {
			t.Fatal(err)
		}
	}
	s := a.Stats()
	if s.Allocs != 10 || s.Dispenses != 1 {
		t.Fatalf("stats = %+v", s)
	}
	// Two fences per bump allocation (header persist + top persist).
	if s.Fences != 20 {
		t.Fatalf("fences = %d, want 20", s.Fences)
	}
	if s.FlushedLines < 20 {
		t.Fatalf("flushed lines = %d, want ≥20", s.FlushedLines)
	}
	_ = fmt.Sprintf("%v", s)
}
