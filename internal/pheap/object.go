package pheap

import (
	"fmt"

	"espresso/internal/klass"
	"espresso/internal/layout"
)

// Object access and heap parsing. All accessors take virtual addresses
// (layout.Ref) and byte-offsets computed from the klass field tables; the
// type-aware convenience layer lives in internal/core.

// KlassOf resolves the klass of the object at ref.
func (h *Heap) KlassOf(ref layout.Ref) (*klass.Klass, error) {
	off := h.OffOf(ref)
	kaddr := layout.Ref(h.dev.ReadU64(off + layout.KlassWordOff))
	k, ok := h.KlassByAddr(kaddr)
	if !ok {
		return nil, fmt.Errorf("pheap: object %#x has dangling klass word %#x", uint64(ref), uint64(kaddr))
	}
	return k, nil
}

// SizeOfObjectAt decodes the klass and size of the object at device
// offset off.
func (h *Heap) SizeOfObjectAt(off int) (*klass.Klass, int, error) {
	kaddr := layout.Ref(h.dev.ReadU64(off + layout.KlassWordOff))
	k, ok := h.KlassByAddr(kaddr)
	if !ok {
		return nil, 0, fmt.Errorf("pheap: offset %d: dangling klass word %#x", off, uint64(kaddr))
	}
	n := 0
	if k.IsArray() {
		n = int(h.dev.ReadU64(off + layout.ArrayLenOff))
	}
	return k, k.SizeOf(n), nil
}

// ArrayLen reads the length word of the array object at ref.
func (h *Heap) ArrayLen(ref layout.Ref) int {
	return int(h.dev.ReadU64(h.OffOf(ref) + layout.ArrayLenOff))
}

// MarkOf reads the mark word of the object at ref.
func (h *Heap) MarkOf(ref layout.Ref) uint64 {
	return h.dev.ReadU64(h.OffOf(ref) + layout.MarkWordOff)
}

// SetMark stores the mark word of the object at ref (volatile store; the
// GC flushes explicitly where its protocol requires).
func (h *Heap) SetMark(ref layout.Ref, mark uint64) {
	h.dev.WriteU64(h.OffOf(ref)+layout.MarkWordOff, mark)
}

// GetWord loads the 8-byte slot at byte offset boff inside the object.
func (h *Heap) GetWord(ref layout.Ref, boff int) uint64 {
	return h.dev.ReadU64(h.OffOf(ref) + boff)
}

// SetWord stores the 8-byte slot at byte offset boff inside the object.
func (h *Heap) SetWord(ref layout.Ref, boff int, v uint64) {
	h.dev.WriteU64(h.OffOf(ref)+boff, v)
}

// ReadBytesAt fills p from byte offset boff inside the object — one
// device read regardless of length, the bulk path under string and
// primitive-array copies.
func (h *Heap) ReadBytesAt(ref layout.Ref, boff int, p []byte) {
	h.dev.ReadBytes(h.OffOf(ref)+boff, p)
}

// WriteBytesAt stores p at byte offset boff inside the object — one
// device write regardless of length.
func (h *Heap) WriteBytesAt(ref layout.Ref, boff int, p []byte) {
	h.dev.WriteBytes(h.OffOf(ref)+boff, p)
}

// FlushRange persists n bytes at byte offset boff inside the object,
// followed by a fence — the primitive under the field/array/object flush
// APIs of paper §3.5.
func (h *Heap) FlushRange(ref layout.Ref, boff, n int) {
	h.dev.Flush(h.OffOf(ref)+boff, n)
	h.dev.Fence()
}

// ForEachObject walks the data heap in address order, region by region,
// invoking fn for every object including fillers. It stops early if fn
// returns false. The walk relies on the per-region allocation invariant:
// everything below a region's top is a valid object or filler. Regions
// whose top is unset are skipped; humongous objects carry the walk
// across their interior regions (whose table entries hold the sentinel,
// never a parse entry point).
func (h *Heap) ForEachObject(fn func(off int, k *klass.Klass, size int) bool) error {
	dataEnd := h.geo.DataOff + h.geo.DataSize
	off := h.geo.DataOff
	for r := 0; r < h.geo.DataRegions(); r++ {
		start := h.geo.DataOff + r*layout.RegionSize
		if off < start {
			off = start
		}
		top := int(h.regionTops[r].Load())
		if top <= regionTopHumongousCont || top <= off {
			continue
		}
		for off < top {
			k, size, err := h.SizeOfObjectAt(off)
			if err != nil {
				return fmt.Errorf("pheap: heap parse failed: %w", err)
			}
			if size <= 0 || off+size > dataEnd {
				return fmt.Errorf("pheap: heap parse: impossible size %d at offset %d", size, off)
			}
			if !fn(off, k, size) {
				return nil
			}
			off += size
		}
	}
	return nil
}

// RefSlots invokes fn with the byte offset (within the object) of every
// reference slot of an object of klass k at device offset off. It is the
// pointer-iteration primitive shared by the collectors and safety scans.
func RefSlots(dev interface{ ReadU64(int) uint64 }, off int, k *klass.Klass, fn func(slotBoff int)) {
	switch k.Kind {
	case klass.KindInstance:
		for i, f := range k.Fields() {
			if f.Type == layout.FTRef {
				fn(layout.FieldOff(i))
			}
		}
	case klass.KindObjArray:
		n := int(dev.ReadU64(off + layout.ArrayLenOff))
		for i := 0; i < n; i++ {
			fn(layout.ElemOff(layout.FTRef, i))
		}
	case klass.KindPrimArray:
		// no refs
	}
}

// ZeroingScan implements the zeroing safety level (paper §3.4): walk the
// whole heap and nullify every reference that points outside any loaded
// persistent heap, so stale DRAM pointers surface as NullPointerException
// rather than undefined behaviour. keep reports whether a ref is still
// valid (i.e., points into persistent memory). Returns the number of
// nullified slots.
func (h *Heap) ZeroingScan(keep func(layout.Ref) bool) (int, error) {
	nulled := 0
	err := h.ForEachObject(func(off int, k *klass.Klass, size int) bool {
		if IsFiller(k) {
			return true
		}
		RefSlots(h.dev, off, k, func(slotBoff int) {
			raw := layout.Ref(h.dev.ReadU64(off + slotBoff))
			// Low link-state tag bits (layout.RefTagMask) are not part of
			// the address: a tagged null (e.g. a persisted Harris delete
			// mark over a nil link) is not a stale pointer, and nulling a
			// tagged slot must preserve its marks — erasing a persisted
			// delete mark would resurrect a committed delete.
			v := layout.UntagRef(raw)
			if v != layout.NullRef && !keep(v) {
				h.dev.WriteU64(off+slotBoff, uint64(layout.RefTag(raw)))
				nulled++
			}
		})
		return true
	})
	if err != nil {
		return nulled, err
	}
	if nulled > 0 {
		// One bulk persist for the scan's stores.
		h.dev.Flush(h.geo.DataOff, h.Top()-h.geo.DataOff)
		h.dev.Fence()
	}
	return nulled, nil
}
