package pheap

import (
	"fmt"

	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/nvm"
	"espresso/internal/telemetry"
	"espresso/internal/telemetry/blackbox"
)

// Crash-consistent allocation (paper §4.1), scaled out with persistent
// region-local allocation buffers (PLABs). The paper's three phases are
//
//	(1) fetch the Klass pointer from the constant pool,
//	(2) allocate memory and update top,
//	(3) initialize the object header,
//
// with the persisted replica of top and the klass-pointer store ordered
// by flush+fence. The paper bumps a single persisted top under one lock;
// here a region dispenser hands each mutator a whole GC region under a
// short lock, and the mutator then bump-allocates inside its PLAB
// lock-free, publishing through a *per-region* persisted top word in the
// region-top table (one cache line per region).
//
// The crash-ordering argument is the paper's, applied region by region,
// and strengthened the same way the seed strengthened it globally: for
// every allocation,
//
//	(a) the object body is zeroed and its header written and persisted
//	    (flush + fence) while the owning region's persisted top still
//	    lies at or below the object start;
//	(b) only then does that region's top word advance past the object
//	    (write + flush + fence) — the publication point.
//
// The persisted prefix [regionStart, top) of every region is therefore a
// parseable run of objects at all times: a crash truncates each region
// independently at its last persisted top and can never expose an
// uninitialized header below one — the paper's "stale top value →
// truncation" recovery rule, made unconditional and per-region. Tops of
// different regions live on different cache lines (layout.RegionTopStride),
// so concurrent mutators never contend on a shared persisted word; that
// independence is exactly what lets allocation throughput scale with
// cores while keeping the same two flush+fence pairs per object the
// single-top allocator paid.
//
// Region-top table encoding (device offsets):
//
//	0                          never used since the last GC reset
//	1 (regionTopHumongousCont) interior region of a humongous run
//	(start, start+RegionSize]  region parses up to this offset
//	> start+RegionSize         humongous run starts here; parses to run end
//
// Objects never straddle a region boundary; a PLAB that cannot fit the
// next object is retired — its tail plugged with a filler object and its
// top sealed at the region end. Objects larger than half a region
// ("humongous") are allocated on whole region-aligned runs at the
// dispenser frontier and are pinned by the collector.

// HugeThreshold is the size above which an allocation takes the humongous
// path.
const HugeThreshold = layout.RegionSize / 2

// regionTopHumongousCont marks a region as the interior of a humongous
// run: never a parse entry point (its bytes belong to the object that
// starts in an earlier region). 1 is unreachable as a real top, which are
// 16-aligned offsets inside the data area.
const regionTopHumongousCont = 1

// ErrOutOfMemory is returned when the data heap cannot fit an allocation.
var ErrOutOfMemory = fmt.Errorf("pheap: out of persistent heap space")

// AllocatorStats counts the work an Allocator performed on its own paths.
// Only the owning mutator may read them; the alloc scaling experiment
// uses FlushedLines to compute per-mutator device critical paths.
type AllocatorStats struct {
	Allocs       int // objects allocated
	FlushedLines int // cache lines this allocator flushed
	Fences       int // fences this allocator issued
	Dispenses    int // regions fetched from the dispenser
}

// Allocator is a mutator-local allocation context: an attached PLAB plus
// an attached recycled hole. It is not safe for concurrent use — each
// mutator (goroutine) owns its Allocator, which is the point: the bump
// path touches only the allocator's own region and that region's line in
// the top table. Obtain one with Heap.NewAllocator; release it with
// Release when the mutator retires.
type Allocator struct {
	h *Heap

	// Attached PLAB: bump-allocates in [cur, end) of region. region < 0
	// means none attached.
	region   int
	cur, end int

	// Attached recycled hole (filler-covered space below a region top).
	holeCur, holeEnd int

	// klass-record address cache, so steady-state allocation skips the
	// segment maps entirely.
	kaddrs map[*klass.Klass]layout.Ref

	stats AllocatorStats

	// cell is this mutator's telemetry counter block (nil when the heap
	// has no registry). Allocation counts and device attribution for the
	// alloc subsystem are tallied here at the call sites where the op
	// counts are deterministic — the same owner-counting discipline as
	// stats above, so the fast path gains no lock, fence, or device op.
	cell *telemetry.Cell
}

// NewAllocator creates and registers a mutator-local allocator.
func (h *Heap) NewAllocator() *Allocator {
	a := &Allocator{h: h, region: -1, kaddrs: make(map[*klass.Klass]layout.Ref)}
	a.cell = h.tel.NewCell()
	h.mu.Lock()
	h.allocators = append(h.allocators, a)
	h.mu.Unlock()
	return a
}

// Stats returns a snapshot of the allocator's own-path counters.
func (a *Allocator) Stats() AllocatorStats { return a.stats }

// TelemetryCell returns the allocator's counter cell (nil when telemetry
// is disabled). The owning mutator's other instrumented paths — the
// ref-store barrier, index contexts — share this cell so one goroutine
// owns exactly one cache-line-padded counter block.
func (a *Allocator) TelemetryCell() *telemetry.Cell { return a.cell }

// Alloc allocates an object of klass k. arrayLen is the element count for
// array klasses and ignored for instance klasses. The object body is
// zeroed; the header carries the current global timestamp. This is the
// landing point of the pnew/panewarray/pnewarray bytecodes.
func (a *Allocator) Alloc(k *klass.Klass, arrayLen int) (layout.Ref, error) {
	if k.IsArray() && arrayLen < 0 {
		return 0, fmt.Errorf("pheap: negative array length %d", arrayLen)
	}
	if a.h.gcActive.Load() {
		return 0, fmt.Errorf("pheap: allocation while collection in progress")
	}
	size := k.SizeOf(arrayLen)
	kaddr, err := a.klassAddr(k)
	if err != nil {
		return 0, err
	}
	if size > HugeThreshold {
		return a.allocHumongous(k, kaddr, arrayLen, size)
	}

	// Recycled holes first, like the seed: refill collector-reported gaps
	// below the region tops before claiming fresh regions.
	if a.holeCur != 0 && a.holeCur+size <= a.holeEnd {
		return a.allocInHole(k, kaddr, arrayLen, size), nil
	}
	if a.h.holeCount.Load() > 0 {
		if hole, ok := a.h.takeHole(size); ok {
			a.holeCur, a.holeEnd = hole.Lo, hole.Hi
			return a.allocInHole(k, kaddr, arrayLen, size), nil
		}
	}

	if a.cur+size > a.end {
		if err := a.refill(size); err != nil {
			return 0, err
		}
	}
	off := a.cur
	h := a.h
	h.dev.Zero(off, size)
	h.writeHeader(off, kaddr, k, arrayLen)
	h.dev.Flush(off, headerBytesOf(k))
	h.dev.Fence()
	a.cur = off + size
	// Publication: the region's persisted top moves past the object only
	// after its header is durable.
	h.persistRegionTop(a.region, a.cur)
	a.stats.Allocs++
	a.stats.FlushedLines += lineSpan(off, headerBytesOf(k)) + 1
	a.stats.Fences += 2
	if c := a.cell; c != nil {
		c.Inc(telemetry.CtrAllocObjects)
		c.Add(telemetry.CtrAllocBytes, uint64(size))
		// Zero + header words + top word; header lines + top line; two fences.
		c.Dev(nvm.SubAlloc, 0, 2+headerWrites(k), uint64(lineSpan(off, headerBytesOf(k))+1), 2)
	}
	return h.AddrOf(off), nil
}

// allocInHole claims size bytes from the attached hole. The hole is
// filler-covered, line-aligned (see pgc's gap split), and lies below its
// region's persisted top, so the protocol is the seed's recycled-region
// protocol: first persist a new tail filler for the remainder, then the
// object header; a crash between the two leaves the old covering filler
// in charge. The region top is untouched. (As in the seed, the
// covering-filler handover is flush-ordered but not eviction-proof: an
// adversarial eviction between the body zeroing and the header fence can
// persist a half-rewritten filler header. Real x86 persists a line at
// store granularity, so the klass-word store itself is never torn.)
func (a *Allocator) allocInHole(k *klass.Klass, kaddr layout.Ref, arrayLen, size int) layout.Ref {
	h := a.h
	off := a.holeCur
	a.holeCur += size
	var devW, devL, devF uint64
	if tail := a.holeEnd - (off + size); tail > 0 {
		h.fillGapRaw(off+size, tail)
		a.stats.FlushedLines += lineSpan(off+size, layout.ArrayHdrBytes)
		a.stats.Fences++
		fw, fl := fillerCost(off+size, tail)
		devW, devL, devF = fw, fl, 1
	}
	h.dev.Zero(off, size)
	h.writeHeader(off, kaddr, k, arrayLen)
	h.dev.Flush(off, headerBytesOf(k))
	h.dev.Fence()
	a.stats.Allocs++
	a.stats.FlushedLines += lineSpan(off, headerBytesOf(k))
	a.stats.Fences++
	if c := a.cell; c != nil {
		c.Inc(telemetry.CtrAllocObjects)
		c.Inc(telemetry.CtrHoleAllocs)
		c.Add(telemetry.CtrAllocBytes, uint64(size))
		c.Dev(nvm.SubAlloc, 0,
			devW+1+headerWrites(k), devL+uint64(lineSpan(off, headerBytesOf(k))), devF+1)
	}
	return h.AddrOf(off)
}

// refill retires the attached PLAB and fetches a region with at least
// size bytes of bump headroom from the dispenser.
func (a *Allocator) refill(size int) error {
	a.retirePLAB()
	r, cur, err := a.h.dispense(size, a.cell)
	if err != nil {
		return err
	}
	a.region = r
	a.cur = cur
	a.end = a.h.geo.DataOff + (r+1)*layout.RegionSize
	a.stats.Dispenses++
	a.cell.Inc(telemetry.CtrPLABRefills)
	return nil
}

// retirePLAB seals the attached PLAB: the unused tail is plugged with a
// persisted filler and the region's top advanced to the region end, so
// the region is whole — it parses to its end and is never dispensed
// again until the collector reclaims it.
func (a *Allocator) retirePLAB() {
	if a.region < 0 {
		return
	}
	if gap := a.end - a.cur; gap > 0 {
		a.h.fillGapRaw(a.cur, gap)
		a.h.persistRegionTop(a.region, a.end)
		a.stats.FlushedLines += lineSpan(a.cur, layout.ArrayHdrBytes) + 1
		a.stats.Fences += 2
		if c := a.cell; c != nil {
			fw, fl := fillerCost(a.cur, gap)
			c.Dev(nvm.SubAlloc, 0, fw+1, fl+1, 2)
		}
	}
	a.cell.Inc(telemetry.CtrPLABRetires)
	a.region = -1
	a.cur, a.end = 0, 0
}

// Release retires the allocator: the attached PLAB's headroom is handed
// back to the dispenser (its top is already persisted, so the next owner
// resumes bumping where this one stopped, line-padded at handoff), and
// the allocator is unregistered. A partially consumed hole is dropped,
// not handed on: its remainder starts mid-line, flush-adjacent to this
// mutator's last object, and stays filler-covered until the next
// collection re-reports it.
func (a *Allocator) Release() {
	h := a.h
	// Fold the cell's counts into the registry's retired accumulator
	// before unregistering, so totals stay monotonic across mutator churn.
	h.tel.ReleaseCell(a.cell)
	a.cell = nil
	h.mu.Lock()
	defer h.mu.Unlock()
	if a.region >= 0 && a.cur < a.end {
		h.freeRegionsInsert(a.region)
	}
	a.region, a.cur, a.end = -1, 0, 0
	a.holeCur, a.holeEnd = 0, 0
	for i, other := range h.allocators {
		if other == a {
			h.allocators = append(h.allocators[:i], h.allocators[i+1:]...)
			break
		}
	}
}

// dropBuffersForGC detaches the PLAB and hole without touching the device
// (the collector republishes all region state). Called under h.mu by
// PrepareForCollection with the world stopped.
func (a *Allocator) dropBuffersForGC() {
	a.region, a.cur, a.end = -1, 0, 0
	a.holeCur, a.holeEnd = 0, 0
}

// klassAddr resolves k's record address through the allocator-local
// cache, falling back to the heap's (locked) EnsureKlass on first use.
func (a *Allocator) klassAddr(k *klass.Klass) (layout.Ref, error) {
	if addr, ok := a.kaddrs[k]; ok {
		return addr, nil
	}
	addr, err := a.h.EnsureKlass(k)
	if err != nil {
		return 0, err
	}
	a.kaddrs[k] = addr
	return addr, nil
}

// Alloc allocates through the heap's shared default allocator — the
// drop-in equivalent of the seed's single allocation entry point, safe
// for concurrent use (serialized on the default allocator's lock).
// Scalable callers attach their own Allocator via NewAllocator instead.
func (h *Heap) Alloc(k *klass.Klass, arrayLen int) (layout.Ref, error) {
	h.defMu.Lock()
	defer h.defMu.Unlock()
	return h.defAlloc.Alloc(k, arrayLen)
}

// dataLimit is one past the last allocatable byte (the scratch region is
// reserved for the compactor).
func (h *Heap) dataLimit() int { return h.geo.ScratchOff }

// dispense hands out a region with at least size bytes of bump headroom:
// first from the free list (fully free regions, or partial regions whose
// previous owner released them — bumping resumes at their persisted top),
// then from the untouched frontier. Partial regions too small for the
// request are skipped and abandoned until the next collection, like the
// seed abandoned undersized holes.
//
// A partial region is handed out at the next cache-line boundary, the
// sliver plugged with a filler: the new owner must never write a line
// that may still hold (and be concurrently flushed with) the previous
// owner's last object. The one-time plug is the handoff cost; every
// later write by the new owner lands on its own lines.
//
// cell is the requesting mutator's telemetry cell (nil when disabled):
// the handoff plug is device traffic issued on the mutator's behalf, so
// it is attributed to the requester even though the heap lock is held.
func (h *Heap) dispense(size int, cell *telemetry.Cell) (region, cur int, err error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.gcActive.Load() {
		return 0, 0, fmt.Errorf("pheap: allocation while collection in progress")
	}
	for len(h.freeRegions) > 0 {
		r := h.freeRegions[0]
		h.freeRegions = h.freeRegions[1:]
		start := h.geo.DataOff + r*layout.RegionSize
		cur = start
		if t := int(h.regionTops[r].Load()); t > regionTopHumongousCont {
			cur = t
		}
		aligned := (cur + layout.LineSize - 1) &^ (layout.LineSize - 1)
		if start+layout.RegionSize-aligned < size {
			continue // abandoned until the next collection
		}
		if aligned > cur {
			h.fillGapRaw(cur, aligned-cur)
			h.persistRegionTop(r, aligned)
			if cell != nil {
				fw, fl := fillerCost(cur, aligned-cur)
				cell.Dev(nvm.SubAlloc, 0, fw+1, fl+1, 2)
			}
			cur = aligned
		}
		// Journal the handoff: one line write + flush, no fence — the
		// record rides the new owner's first object-persist fence.
		h.fr.Append(blackbox.EvPLABHandoff, uint64(r), uint64(cur), uint64(start+layout.RegionSize-cur))
		return r, cur, nil
	}
	if next := h.geo.DataOff + (h.frontier+1)*layout.RegionSize; next <= h.dataLimit() {
		r := h.frontier
		h.frontier++
		cur := h.geo.DataOff + r*layout.RegionSize
		h.fr.Append(blackbox.EvPLABHandoff, uint64(r), uint64(cur), uint64(layout.RegionSize))
		return r, cur, nil
	}
	return 0, 0, ErrOutOfMemory
}

// takeHole pops recycled holes until one fits size. Undersized holes are
// dropped (they stay filler-covered; the next collection re-reports
// whatever is still free), preserving the seed's abandon-on-miss
// behaviour.
func (h *Heap) takeHole(size int) (Hole, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for len(h.freeHoles) > 0 {
		hole := h.freeHoles[0]
		h.freeHoles = h.freeHoles[1:]
		h.holeCount.Add(-1)
		if hole.Hi-hole.Lo >= size {
			return hole, true
		}
	}
	return Hole{}, false
}

// freeRegionsInsert returns r to the dispenser's free list, keeping it
// sorted so allocation packs the heap downward. Caller holds h.mu.
func (h *Heap) freeRegionsInsert(r int) {
	i := 0
	for i < len(h.freeRegions) && h.freeRegions[i] < r {
		i++
	}
	h.freeRegions = append(h.freeRegions, 0)
	copy(h.freeRegions[i+1:], h.freeRegions[i:])
	h.freeRegions[i] = r
}

// allocHumongous claims a whole-region-aligned run at the dispenser
// frontier for an object larger than half a region, plugging the tail of
// its last region. The caller's PLAB is retired first so, for a single
// mutator, heap parse order remains allocation order (the seed aligned
// its global top the same way). Publication order: header and tail
// filler persist first, then the covered region-top entries — the head
// region's top at the run end, interior regions at the sentinel — with
// one flush+fence over the (contiguous) table span.
func (a *Allocator) allocHumongous(k *klass.Klass, kaddr layout.Ref, arrayLen, size int) (layout.Ref, error) {
	a.retirePLAB()
	h := a.h
	h.mu.Lock()
	defer h.mu.Unlock()
	start := h.geo.DataOff + h.frontier*layout.RegionSize
	end := align(start+size, layout.RegionSize)
	if end > h.dataLimit() {
		return 0, ErrOutOfMemory
	}
	nRegions := (end - start) / layout.RegionSize
	h.frontier += nRegions

	h.dev.Zero(start, size)
	h.writeHeader(start, kaddr, k, arrayLen)
	h.dev.Flush(start, headerBytesOf(k))
	if end > start+size {
		h.fillGapRawNoFence(start+size, end-start-size)
	}
	h.dev.Fence()

	r0 := (start - h.geo.DataOff) / layout.RegionSize
	h.dev.WriteU64(h.RegionTopMetaOff(r0), uint64(end))
	h.dev.WriteU64(h.RegionTopMetaOff(r0)+8, regionTopSum(r0, uint64(end)))
	for r := r0 + 1; r < r0+nRegions; r++ {
		h.dev.WriteU64(h.RegionTopMetaOff(r), regionTopHumongousCont)
		h.dev.WriteU64(h.RegionTopMetaOff(r)+8, regionTopSum(r, regionTopHumongousCont))
	}
	h.dev.Flush(h.RegionTopMetaOff(r0), nRegions*layout.RegionTopStride)
	h.dev.Fence()
	h.regionTops[r0].Store(int64(end))
	for r := r0 + 1; r < r0+nRegions; r++ {
		h.regionTops[r].Store(regionTopHumongousCont)
	}
	a.stats.Allocs++
	a.stats.Fences += 2
	a.stats.FlushedLines += lineSpan(start, headerBytesOf(k)) + nRegions
	if c := a.cell; c != nil {
		c.Inc(telemetry.CtrAllocObjects)
		c.Inc(telemetry.CtrHumongous)
		c.Add(telemetry.CtrAllocBytes, uint64(size))
		var tw, tl uint64
		if end > start+size {
			tw, tl = fillerCost(start+size, end-start-size)
		}
		// Zero + header + tail filler + one top-table {value, checksum}
		// pair per region; header lines + tail lines + one table line per
		// region; two fences.
		c.Dev(nvm.SubAlloc, 0,
			1+headerWrites(k)+tw+2*uint64(nRegions),
			uint64(lineSpan(start, headerBytesOf(k)))+tl+uint64(nRegions), 2)
	}
	return h.AddrOf(start), nil
}

func headerBytesOf(k *klass.Klass) int {
	if k.IsArray() {
		return layout.ArrayHdrBytes
	}
	return layout.HeaderBytes
}

// lineSpan counts the cache lines covering [off, off+n).
func lineSpan(off, n int) int {
	return (off+n-1)/layout.LineSize - off/layout.LineSize + 1
}

// headerWrites counts the device write ops writeHeader issues for k.
func headerWrites(k *klass.Klass) uint64 {
	if k.IsArray() {
		return 3
	}
	return 2
}

// fillerCost counts the device write ops and flushed lines fillGapRawNoFence
// issues to plug [off, off+n) — the attribution mirror of that function's
// two shapes (2-word filler vs byte-array filler).
func fillerCost(off, n int) (writes, lines uint64) {
	if n == 0 {
		return 0, 0
	}
	if n == layout.HeaderBytes {
		return 2, uint64(lineSpan(off, layout.HeaderBytes))
	}
	return 3, uint64(lineSpan(off, layout.ArrayHdrBytes))
}

func (h *Heap) writeHeader(off int, kaddr layout.Ref, k *klass.Klass, arrayLen int) {
	h.dev.WriteU64(off+layout.MarkWordOff, layout.MarkWord(h.globalTS.Load(), 0))
	h.dev.WriteU64(off+layout.KlassWordOff, uint64(kaddr))
	if k.IsArray() {
		h.dev.WriteU64(off+layout.ArrayLenOff, uint64(arrayLen))
	}
}

// fillGapRaw writes and persists a filler object covering exactly
// [off, off+n). It is lock-free: the filler klass addresses are resolved
// once at create/load, and the caller owns the covered bytes. n must be
// 16-aligned; a 16-byte gap takes the 2-word filler, larger gaps a
// byte-array filler.
func (h *Heap) fillGapRaw(off, n int) {
	h.fillGapRawNoFence(off, n)
	h.dev.Fence()
}

func (h *Heap) fillGapRawNoFence(off, n int) {
	if n == 0 {
		return
	}
	if n < layout.MinObjectBytes || n%layout.ObjAlign != 0 {
		panic(fmt.Sprintf("pheap: unfillable gap of %d bytes", n))
	}
	if h.fillerAddr == 0 || h.fillerArrAddr == 0 {
		panic("pheap: filler klasses not resolved")
	}
	if n == layout.HeaderBytes {
		h.writeHeader(off, h.fillerAddr, h.fillerK, 0)
		h.dev.Flush(off, layout.HeaderBytes)
		return
	}
	// Choose the largest length whose aligned size equals n exactly.
	elems := n - layout.ArrayHdrBytes
	if layout.ArrayBytes(layout.FTByte, elems) != n {
		elems -= layout.ArrayBytes(layout.FTByte, elems) - n
	}
	h.writeHeader(off, h.fillerArrAddr, h.fillerArrK, elems)
	h.dev.Flush(off, layout.ArrayHdrBytes)
}

// IsFiller reports whether k is one of the gap-filler klasses.
func IsFiller(k *klass.Klass) bool {
	return k.Name == klass.FillerName || k.Name == klass.FillerArrayName
}

// WriteFiller writes a persisted filler object covering exactly
// [off, off+n). The garbage collector uses it to plug evacuated holes so
// the compacted heap still parses; the caller must own the covered bytes
// (the world is stopped during collection).
func (h *Heap) WriteFiller(off, n int) {
	h.fillGapRaw(off, n)
}
