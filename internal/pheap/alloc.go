package pheap

import (
	"fmt"

	"espresso/internal/klass"
	"espresso/internal/layout"
)

// Crash-consistent allocation (paper §4.1). The paper's three phases are
//
//	(1) fetch the Klass pointer from the constant pool,
//	(2) allocate memory and update top,
//	(3) initialize the object header,
//
// with the persisted replica of top and the klass-pointer store ordered by
// flush+fence. We strengthen the paper's ordering slightly: the header is
// persisted *before* the top replica advances past the object, so the
// persisted prefix of the data heap is always a parseable sequence of
// objects — a crash can only truncate at a persisted-top boundary, never
// expose an uninitialized header below it (the paper's "stale top value →
// truncation" recovery rule, made unconditional).
//
// Objects never straddle a region boundary; the remainder of a region that
// cannot fit the next object is plugged with a filler object. Objects
// larger than half a region ("humongous") are allocated on whole
// region-aligned runs and are pinned by the collector.

// HugeThreshold is the size above which an allocation takes the humongous
// path.
const HugeThreshold = layout.RegionSize / 2

// ErrOutOfMemory is returned when the data heap cannot fit an allocation.
var ErrOutOfMemory = fmt.Errorf("pheap: out of persistent heap space")

// Alloc allocates an object of klass k. arrayLen is the element count for
// array klasses and ignored for instance klasses. The object body is
// zeroed; the header carries the current global timestamp. This is the
// landing point of the pnew/panewarray/pnewarray bytecodes.
func (h *Heap) Alloc(k *klass.Klass, arrayLen int) (layout.Ref, error) {
	if k.IsArray() && arrayLen < 0 {
		return 0, fmt.Errorf("pheap: negative array length %d", arrayLen)
	}
	size := k.SizeOf(arrayLen)

	h.mu.Lock()
	defer h.mu.Unlock()
	if h.gcActive {
		return 0, fmt.Errorf("pheap: allocation while collection in progress")
	}
	kaddr, err := h.ensureKlassLocked(k)
	if err != nil {
		return 0, err
	}

	var off int
	inHole := false
	if size > HugeThreshold {
		off, err = h.reserveHumongousLocked(size)
	} else {
		off, inHole, err = h.reserveLocked(size)
	}
	if err != nil {
		return 0, err
	}

	if inHole {
		// Recycled-region protocol: the hole is currently covered by a
		// filler, so the heap parses at every instant. First persist a new
		// tail filler for the remainder, then the object header; a crash
		// between the two leaves the old covering filler in charge.
		if tail := h.holeEnd - (off + size); tail > 0 {
			h.fillGapLocked(off+size, tail)
		}
		h.dev.Zero(off, size)
		h.writeHeader(off, kaddr, k, arrayLen)
		h.dev.Flush(off, headerBytesOf(k))
		h.dev.Fence()
		// top is untouched: the hole lies below the persisted top.
		return h.AddrOf(off), nil
	}

	h.dev.Zero(off, size)
	h.writeHeader(off, kaddr, k, arrayLen)
	h.dev.Flush(off, headerBytesOf(k))
	h.dev.Fence()
	h.persistU64(mTop, uint64(h.top))
	return h.AddrOf(off), nil
}

func headerBytesOf(k *klass.Klass) int {
	if k.IsArray() {
		return layout.ArrayHdrBytes
	}
	return layout.HeaderBytes
}

func (h *Heap) writeHeader(off int, kaddr layout.Ref, k *klass.Klass, arrayLen int) {
	h.dev.WriteU64(off+layout.MarkWordOff, layout.MarkWord(h.globalTS, 0))
	h.dev.WriteU64(off+layout.KlassWordOff, uint64(kaddr))
	if k.IsArray() {
		h.dev.WriteU64(off+layout.ArrayLenOff, uint64(arrayLen))
	}
}

// dataLimit is one past the last allocatable byte (the scratch region is
// reserved for the compactor).
func (h *Heap) dataLimit() int { return h.geo.ScratchOff }

// reserveLocked claims size bytes for a small object: first from the
// active recycled hole, then from the free-region list, then by bumping
// top (plugging the current region's tail with a filler if the object
// would straddle the boundary).
func (h *Heap) reserveLocked(size int) (off int, inHole bool, err error) {
	for {
		if h.holeCur != 0 && h.holeCur+size <= h.holeEnd {
			off = h.holeCur
			h.holeCur += size
			return off, true, nil
		}
		if len(h.freeHoles) == 0 {
			break
		}
		// The abandoned hole's tail is already covered by a filler from
		// the previous allocation (or by the GC's gap filler).
		next := h.freeHoles[0]
		h.freeHoles = h.freeHoles[1:]
		h.holeCur, h.holeEnd = next.Lo, next.Hi
	}

	regionEnd := (h.top/layout.RegionSize + 1) * layout.RegionSize
	if h.top+size > regionEnd {
		if regionEnd > h.dataLimit() {
			return 0, false, ErrOutOfMemory
		}
		h.fillGapLocked(h.top, regionEnd-h.top)
		h.top = regionEnd
	}
	if h.top+size > h.dataLimit() {
		return 0, false, ErrOutOfMemory
	}
	off = h.top
	h.top += size
	return off, false, nil
}

// reserveHumongousLocked claims a whole-region-aligned run for a humongous
// object and plugs the tail of its last region.
func (h *Heap) reserveHumongousLocked(size int) (int, error) {
	start := align(h.top, layout.RegionSize)
	end := align(start+size, layout.RegionSize)
	if end > h.dataLimit() {
		return 0, ErrOutOfMemory
	}
	if start > h.top {
		h.fillGapLocked(h.top, start-h.top)
	}
	if end > start+size {
		h.fillGapLocked(start+size, end-start-size)
	}
	h.top = end
	return start, nil
}

// fillGapLocked writes a filler object covering exactly [off, off+n).
// n must be 16-aligned; a 16-byte gap takes the 2-word filler, larger gaps
// a byte-array filler.
func (h *Heap) fillGapLocked(off, n int) {
	if n == 0 {
		return
	}
	if n < layout.MinObjectBytes || n%layout.ObjAlign != 0 {
		panic(fmt.Sprintf("pheap: unfillable gap of %d bytes", n))
	}
	if n == layout.HeaderBytes {
		fk := h.reg.Filler()
		kaddr, _ := h.ensureKlassLocked(fk)
		h.writeHeader(off, kaddr, fk, 0)
		h.dev.Flush(off, layout.HeaderBytes)
		h.dev.Fence()
		return
	}
	fk := h.reg.FillerArray()
	kaddr, _ := h.ensureKlassLocked(fk)
	// Choose the largest length whose aligned size equals n exactly.
	elems := n - layout.ArrayHdrBytes
	if layout.ArrayBytes(layout.FTByte, elems) != n {
		elems -= layout.ArrayBytes(layout.FTByte, elems) - n
	}
	h.writeHeader(off, kaddr, fk, elems)
	h.dev.Flush(off, layout.ArrayHdrBytes)
	h.dev.Fence()
}

// IsFiller reports whether k is one of the gap-filler klasses.
func IsFiller(k *klass.Klass) bool {
	return k.Name == klass.FillerName || k.Name == klass.FillerArrayName
}

// WriteFiller writes a persisted filler object covering exactly
// [off, off+n). The garbage collector uses it to plug evacuated holes so
// the compacted heap still parses.
func (h *Heap) WriteFiller(off, n int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.fillGapLocked(off, n)
}
