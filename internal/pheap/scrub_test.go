package pheap

import (
	"strings"
	"testing"

	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/nvm"
	"espresso/internal/nvm/faultdev"
)

// buildScrubImage populates a heap past its first data region (so
// region-granular salvage has something real to amputate) and returns
// the committed crash image plus the refs that must survive region-0
// salvage.
func buildScrubImage(t *testing.T) []byte {
	t.Helper()
	h, reg := testHeap(t, Config{DataSize: 1 << 20})
	big, err := reg.Define(klass.MustInstance("Big", nil, manyFields(65)...))
	if err != nil {
		t.Fatal(err)
	}
	n := layout.RegionSize/big.SizeOf(0) + 40 // spill well into region 1
	for i := 0; i < n; i++ {
		if _, err := h.Alloc(big, 0); err != nil {
			t.Fatal(err)
		}
	}
	h.Device().FlushAll()
	return h.Device().CrashImage(nvm.CrashFlushedOnly, 0)
}

func imgDev(img []byte) *nvm.Device {
	cp := append([]byte(nil), img...)
	return nvm.FromImage(cp, nvm.Config{Mode: nvm.Tracked})
}

func TestScrubCleanImage(t *testing.T) {
	img := buildScrubImage(t)
	rep, err := Scrub(imgDev(img))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt() {
		t.Fatalf("clean image scrubbed dirty: %v", rep.Findings)
	}
	if !rep.Checksummed {
		t.Fatal("current-format image not recognized as checksummed")
	}
	if rep.RegionsChecked == 0 {
		t.Fatal("scrub checked no region-top lines")
	}
}

func TestScrubRejectsUnreadableImage(t *testing.T) {
	img := buildScrubImage(t)
	faultdev.FlipBitInImage(img, 0, 5) // heap magic
	if _, err := Scrub(imgDev(img)); err == nil {
		t.Fatal("bad-magic image scrubbed without error; unreadable must stay distinct from corrupt")
	}
	if _, _, err := LoadSalvage(imgDev(img), klass.NewRegistry()); err == nil {
		t.Fatal("salvage opened an unrecognizable image")
	}
}

func TestGCPhaseCorruptionDetectedAndSalvaged(t *testing.T) {
	img := buildScrubImage(t)
	h0, err := Load(imgDev(img), klass.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	faultdev.FlipBitInImage(img, h0.GCPhaseSumMetaOff(), 0)

	rep, err := Scrub(imgDev(img))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Corrupt() || !strings.Contains(rep.Findings[0], "gc-phase") {
		t.Fatalf("findings = %v, want a gc-phase checksum finding", rep.Findings)
	}
	if _, err := Load(imgDev(img), klass.NewRegistry()); err == nil {
		t.Fatal("strict load accepted a corrupt gc-phase checksum")
	}
	h, salv, err := LoadSalvage(imgDev(img), klass.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if !salv.GCPhaseRepaired || !salv.Dirty() {
		t.Fatalf("salvage report %+v, want GCPhaseRepaired", salv)
	}
	if len(salv.RegionsLost) != 0 {
		t.Fatalf("gc-phase repair lost regions %v; repair must not amputate", salv.RegionsLost)
	}
	if h.GCPhase() != GCPhaseIdle {
		t.Fatalf("repaired phase = %d, want idle", h.GCPhase())
	}
}

func TestRegionTopCorruptionQuarantinesOnlyItsRegion(t *testing.T) {
	img := buildScrubImage(t)
	h0, err := Load(imgDev(img), klass.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	faultdev.CorruptLineInImage(img, h0.RegionTopMetaOff(1), 7)

	rep, err := Scrub(imgDev(img))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Corrupt() {
		t.Fatal("scrub missed a rotted region-top line")
	}
	if _, err := Load(imgDev(img), klass.NewRegistry()); err == nil {
		t.Fatal("strict load accepted a corrupt region-top line")
	}
	h, salv, err := LoadSalvage(imgDev(img), klass.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if len(salv.RegionsLost) != 1 || salv.RegionsLost[0] != 1 {
		t.Fatalf("RegionsLost = %v, want exactly region 1", salv.RegionsLost)
	}
	if salv.BytesLost != layout.RegionSize {
		t.Fatalf("BytesLost = %d, want one region", salv.BytesLost)
	}
	if !h.RegionQuarantined(1) || h.RegionQuarantined(0) {
		t.Fatalf("quarantine map wrong: %v", h.QuarantinedRegions())
	}
	// The surviving regions still parse, and nothing parses out of the
	// zeroed region (never fabricate).
	count := 0
	if err := h.ForEachObject(func(off int, k *klass.Klass, size int) bool {
		if off >= h.Geo().DataOff+layout.RegionSize && off < h.Geo().DataOff+2*layout.RegionSize {
			t.Fatalf("object parsed out of the quarantined region at %d", off)
		}
		if !IsFiller(k) {
			count++
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count == 0 {
		t.Fatal("salvage lost the healthy regions too")
	}
	// The salvaged image reloads strictly: the quarantine is durable.
	img2 := h.Device().CrashImage(nvm.CrashFlushedOnly, 0)
	if _, err := Load(imgDev(img2), klass.NewRegistry()); err != nil {
		t.Fatalf("salvaged image does not reload strictly: %v", err)
	}
}

func TestRedoCorruptionDetectedAndDiscarded(t *testing.T) {
	img := buildScrubImage(t)
	// Re-create a committed-pending batch (six no-op entries so the batch
	// spills past the redo log's first cache line), then rot one entry.
	dev := imgDev(img)
	h0, err := Load(dev, klass.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	geo := h0.Geo()
	topOff := h0.RegionTopMetaOff(0)
	topVal := dev.ReadU64(topOff)
	entries := make([]RedoEntry, 6)
	for i := range entries {
		entries[i] = RedoEntry{Off: topOff, Val: topVal}
	}
	h0.RedoCommit(entries)
	pending := dev.CrashImage(nvm.CrashFlushedOnly, 0)

	// Sanity: the committed-pending image is healthy as-is.
	if rep, err := Scrub(imgDev(pending)); err != nil || rep.Corrupt() || !rep.RedoPending {
		t.Fatalf("pending image: rep=%+v err=%v, want clean with RedoPending", rep, err)
	}

	faultdev.FlipBitInImage(pending, geo.RedoOff+24, 3) // first entry's value word
	rep, err := Scrub(imgDev(pending))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Corrupt() || !strings.Contains(rep.Findings[0], "redo") {
		t.Fatalf("findings = %v, want a redo checksum finding", rep.Findings)
	}
	if _, err := Load(imgDev(pending), klass.NewRegistry()); err == nil {
		t.Fatal("strict load applied a corrupt redo batch")
	}
	h, salv, err := LoadSalvage(imgDev(pending), klass.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if !salv.RedoDiscarded {
		t.Fatalf("salvage report %+v, want RedoDiscarded", salv)
	}
	if h.RedoPending() {
		t.Fatal("discarded batch still reads as pending")
	}
}
