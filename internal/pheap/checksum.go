package pheap

import (
	"espresso/internal/layout"
	"espresso/internal/nvm"
)

// Metadata checksums (heap format v5). Coverage is deliberately narrow:
// only the words whose misinterpretation is *silent* — a rotted
// region-top line changes where parsing stops, a rotted redo entry
// rewrites an arbitrary word, a rotted GC-phase word changes which
// recovery runs. Payload data stays checksum-free: object headers are
// already structurally validated by parsing, and guarding every field
// store would put fences back on the fast paths this codebase exists to
// keep clean. Each checksum lives in the same cache line as the words
// it covers, so persisting it rides the flush the protocol already
// issues — zero extra fences anywhere.

// sumInit / sumMix form a seeded xor-multiply-shift mixer (the same
// construction as the flight recorder's record checksum): cheap, and a
// single flipped bit avalanches through the remaining width.
const sumMult = 0x9E3779B97F4A7C15

func sumMix(s, w uint64) uint64 {
	s ^= w
	s *= sumMult
	s ^= s >> 29
	return s
}

// gcPhaseSum covers the GC-phase word. Seeded with the word's metadata
// offset so a word copied from elsewhere in the line cannot validate.
func gcPhaseSum(phase uint64) uint64 {
	return sumMix(heapMagic^mGCPhase, phase)
}

// regionTopSum covers region r's top-table value. Salted with the
// region index so a line block-copied between regions fails — a top is
// only meaningful for the region it bounds.
func regionTopSum(r int, top uint64) uint64 {
	return sumMix(sumMix(heapMagic, uint64(r)), top)
}

// regionTopLineValid applies the top-line rule: an all-zero line is an
// untouched region (fresh NVM reads zero, and salvage resets
// quarantined lines to it); anything else must carry its checksum.
func regionTopLineValid(r int, top, sum uint64) bool {
	return (top == 0 && sum == 0) || sum == regionTopSum(r, top)
}

// redoSeed seeds the redo-batch checksum ("REDO" ^ heap magic).
const redoSeed = heapMagic ^ 0x5245444F

// redoSumAt computes the committed-batch checksum over the entry count
// and the first count {off, val} pairs as currently stored in the redo
// area. RedoCommit calls it after writing the entries (so the sum
// provably covers the committed bytes); validation calls it on load,
// and the format upgrade uses it to stamp a pending pre-v5 batch.
func redoSumAt(dev *nvm.Device, geo Geometry, count int) uint64 {
	base := geo.RedoOff
	s := sumMix(redoSeed, uint64(count))
	for i := 0; i < count; i++ {
		s = sumMix(s, dev.ReadU64(base+16+i*16))
		s = sumMix(s, dev.ReadU64(base+16+i*16+8))
	}
	return s
}

func (h *Heap) redoSumFromDevice(count int) uint64 { return redoSumAt(h.dev, h.geo, count) }

// redoSumOff is the device offset of the redo-batch checksum: the last
// word of the redo area, outside the entry array.
func (h *Heap) redoSumOff() int { return h.geo.RedoOff + h.geo.RedoSize - 8 }

// regionTopIndex reports whether off is a region-top table value slot,
// and for which region — RedoApply uses it to refresh the line checksum
// whenever a batch republishes a top.
func (h *Heap) regionTopIndex(off int) (int, bool) {
	rel := off - h.geo.RegionTopOff
	if rel < 0 || rel >= h.geo.RegionTopSize || rel%layout.RegionTopStride != 0 {
		return 0, false
	}
	return rel / layout.RegionTopStride, true
}
