package pshard

import (
	"errors"
	"testing"
	"time"

	"espresso/internal/nvm/faultdev"
)

// buildDegradedImages commits a 2-shard set and returns its power-loss
// images plus the committed model, split by owning shard.
func buildDegradedImages(t *testing.T) (map[string][]byte, map[int64]int64) {
	t.Helper()
	store := NewMemStore()
	set, err := OpenSet(store, "kv", testOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	model := make(map[int64]int64)
	c := set.NewCtx()
	for k := int64(0); k < 600; k++ {
		if err := c.Put(k, k*17+1); err != nil {
			t.Fatal(err)
		}
		model[k] = k*17 + 1
	}
	c.Release()
	return images(t, store, "kv", 2), model
}

func copyImages(imgs map[string][]byte) map[string][]byte {
	cp := make(map[string][]byte, len(imgs))
	for k, v := range imgs {
		cp[k] = append([]byte(nil), v...)
	}
	return cp
}

func degradedOptions() Options {
	o := testOptions(2)
	o.Degraded = true
	o.DisableRetryLoop = true
	return o
}

// TestDegradedOpenQuarantinesCorruptShard rots shard 0's heap magic —
// permanent, unrecoverable damage — and checks the full fence-and-serve
// contract: strict open fails outright, degraded open fences exactly the
// rotten shard, every shard-0 operation bounces with ErrShardQuarantined
// while shard 1 serves its committed keys exactly, and a manual retry
// against still-rotten media leaves the quarantine in place.
func TestDegradedOpenQuarantinesCorruptShard(t *testing.T) {
	imgs, model := buildDegradedImages(t)
	rotten := copyImages(imgs)
	faultdev.FlipBitInImage(rotten[ShardHeapName("kv", 0)], 0, 6)

	if _, err := OpenSet(storeFrom(t, rotten), "kv", testOptions(2)); err == nil {
		t.Fatal("strict OpenSet accepted a shard with a rotten magic")
	}

	set, err := OpenSet(storeFrom(t, rotten), "kv", degradedOptions())
	if err != nil {
		t.Fatalf("degraded OpenSet: %v", err)
	}
	defer set.Close()
	if q := set.Quarantined(); len(q) != 1 || q[0] != 0 {
		t.Fatalf("Quarantined() = %v, want [0]", q)
	}
	if set.QuarantineCause(0) == nil {
		t.Fatal("quarantined shard has no recorded cause")
	}
	if err := set.QuarantineCause(1); err != nil {
		t.Fatalf("healthy shard carries a quarantine cause: %v", err)
	}

	c := set.NewCtx()
	defer c.Release()
	served, fenced := 0, 0
	for k, want := range model {
		if set.ShardOf(k) == 0 {
			fenced++
			if _, _, err := c.Lookup(k); !errors.Is(err, ErrShardQuarantined) {
				t.Fatalf("Lookup(%d) on fenced shard: err = %v, want ErrShardQuarantined", k, err)
			}
			if _, ok := c.Get(k); ok {
				t.Fatalf("Get(%d) on fenced shard returned a value", k)
			}
			if _, err := c.Remove(k); !errors.Is(err, ErrShardQuarantined) {
				t.Fatalf("Remove(%d) on fenced shard: err = %v, want ErrShardQuarantined", k, err)
			}
		} else {
			served++
			got, ok := c.Get(k)
			if !ok || got != want {
				t.Fatalf("healthy Get(%d) = %d,%v, want %d", k, got, ok, want)
			}
		}
	}
	if served == 0 || fenced == 0 {
		t.Fatalf("degenerate split: %d served, %d fenced", served, fenced)
	}
	scanned := 0
	c.Scan(func(k, v int64) bool {
		if set.ShardOf(k) == 0 {
			t.Fatalf("Scan surfaced key %d from the quarantined shard", k)
		}
		if v != model[k] {
			t.Fatalf("Scan(%d) = %d, want %d", k, v, model[k])
		}
		scanned++
		return true
	})
	if scanned != served {
		t.Fatalf("Scan saw %d keys, want all %d healthy ones", scanned, served)
	}

	// The rot is permanent: retrying must not "heal" anything.
	if healed := set.RetryQuarantined(); len(healed) != 0 {
		t.Fatalf("RetryQuarantined healed %v against still-rotten media", healed)
	}
	if q := set.Quarantined(); len(q) != 1 || q[0] != 0 {
		t.Fatalf("Quarantined() = %v after failed retry, want [0]", q)
	}
}

// TestRetryQuarantinedHealsTransientFault fences shard 0 with a one-shot
// read error (the media heals after the first failed read), then checks
// that a manual RetryQuarantined reopens it and the whole committed set
// serves exactly.
func TestRetryQuarantinedHealsTransientFault(t *testing.T) {
	imgs, model := buildDegradedImages(t)
	store := storeFrom(t, imgs)
	dev, err := store.Open(ShardHeapName("kv", 0))
	if err != nil {
		t.Fatal(err)
	}
	in := faultdev.Install(dev, faultdev.Plan{Kind: faultdev.ReadError, Off: 0, N: 8, Budget: 1})
	defer in.Remove()

	opts := degradedOptions()
	opts.Telemetry = true
	set, err := OpenSet(store, "kv", opts)
	if err != nil {
		t.Fatalf("degraded OpenSet: %v", err)
	}
	defer set.Close()
	if q := set.Quarantined(); len(q) != 1 || q[0] != 0 {
		t.Fatalf("Quarantined() = %v, want [0]", q)
	}
	if got := set.Telemetry().Snapshot().Counters["shard.quarantined"]; got < 1 {
		t.Fatalf("shard.quarantined counter = %d, want >= 1", got)
	}

	healed := set.RetryQuarantined()
	if len(healed) != 1 || healed[0] != 0 {
		t.Fatalf("RetryQuarantined() = %v, want [0] (budget drained, media healed)", healed)
	}
	if q := set.Quarantined(); len(q) != 0 {
		t.Fatalf("Quarantined() = %v after heal, want empty", q)
	}
	verifySet(t, "after heal", set, model)
}

// TestBackgroundRetryLoopHeals runs the real backoff loop: a transient
// read fault quarantines shard 0 at open, and the background goroutine —
// no manual retry — must reopen it within its capped-exponential
// schedule.
func TestBackgroundRetryLoopHeals(t *testing.T) {
	imgs, model := buildDegradedImages(t)
	store := storeFrom(t, imgs)
	dev, err := store.Open(ShardHeapName("kv", 0))
	if err != nil {
		t.Fatal(err)
	}
	in := faultdev.Install(dev, faultdev.Plan{Kind: faultdev.ReadError, Off: 0, N: 8, Budget: 1})
	defer in.Remove()

	opts := testOptions(2)
	opts.Degraded = true
	opts.RetryBase = 2 * time.Millisecond
	opts.RetryCap = 20 * time.Millisecond
	set, err := OpenSet(store, "kv", opts)
	if err != nil {
		t.Fatalf("degraded OpenSet: %v", err)
	}
	defer set.Close()
	if q := set.Quarantined(); len(q) != 1 || q[0] != 0 {
		t.Fatalf("Quarantined() = %v, want [0]", q)
	}
	deadline := time.Now().Add(10 * time.Second)
	for len(set.Quarantined()) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("background retry loop never healed shard 0 (cause: %v)", set.QuarantineCause(0))
		}
		time.Sleep(time.Millisecond)
	}
	verifySet(t, "after background heal", set, model)
}
