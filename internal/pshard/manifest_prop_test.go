package pshard

import (
	"math/rand"
	"testing"

	"espresso/internal/nvm"
)

// Property test for ReadManifest under arbitrary media corruption: flip
// random bytes in a valid manifest image and reparse. The parser may
// reject (any error) or — when the damage misses every validated field —
// still decode, but it must never panic, and whatever it returns must be
// structurally valid routing state: in-range shard count and a strictly
// increasing boundary table starting at 0. Corruption that lands inside
// the checksummed byte ranges must always be rejected.
func TestReadManifestUnderRandomCorruption(t *testing.T) {
	golden := nvm.New(nvm.Config{Size: ManifestDeviceSize, Mode: nvm.Tracked})
	if err := WriteManifest(golden, &Manifest{
		Shards:        7,
		Generation:    3,
		ShardDataSize: 8 << 20,
		Bounds:        EqualBounds(7),
	}); err != nil {
		t.Fatal(err)
	}
	img := golden.CrashImage(nvm.CrashFlushedOnly, 0)

	// The v2 checksum covers state, shard count, shard size, the live
	// boundary table, and the sum word itself.
	checksummed := func(off int) bool {
		switch {
		case off >= ManifestStateOff && off < ManifestStateOff+8:
			return true
		case off >= 24 && off < 48: // shard count + shard size words
			return off < 32 || off >= 40
		case off >= ManifestBoundsOff && off < ManifestBoundsOff+8*7:
			return true
		case off >= ManifestSumOff && off < ManifestSumOff+8:
			return true
		}
		return false
	}

	rng := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < 500; trial++ {
		cp := append([]byte(nil), img...)
		hitChecksummed, hitVersion := false, false
		for i, n := 0, 1+rng.Intn(8); i < n; i++ {
			off := rng.Intn(ManifestDeviceSize)
			cp[off] ^= byte(1 + rng.Intn(255))
			if checksummed(off) {
				hitChecksummed = true
			}
			if off >= 8 && off < 16 {
				// The version word is deliberately outside the checksum (the
				// v1→v2 upgrade needs it): corruption here can downgrade the
				// parse to the checksum-free v1 path, so detection of a
				// same-trial checksummed-range hit is no longer guaranteed.
				hitVersion = true
			}
		}
		dev := nvm.FromImage(cp, nvm.Config{Mode: nvm.Tracked})
		m, err := ReadManifest(dev)
		if err != nil {
			continue
		}
		if hitChecksummed && !hitVersion {
			t.Fatalf("trial %d: corruption inside the checksummed ranges parsed anyway: %+v", trial, m)
		}
		if m.Shards < 1 || m.Shards > MaxShards || len(m.Bounds) != m.Shards {
			t.Fatalf("trial %d: structurally invalid manifest accepted: %+v", trial, m)
		}
		if m.Bounds[0] != 0 {
			t.Fatalf("trial %d: boundary table does not start at 0: %+v", trial, m)
		}
		for i := 1; i < m.Shards; i++ {
			if m.Bounds[i] <= m.Bounds[i-1] {
				t.Fatalf("trial %d: boundary table not increasing: %+v", trial, m)
			}
		}
	}
}
