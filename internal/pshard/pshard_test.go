package pshard

import (
	"bytes"
	"fmt"
	"testing"

	"espresso/internal/nvm"
)

// setNames lists every device name a set of n shards registers.
func setNames(base string, n int) []string {
	names := []string{ManifestName(base)}
	for i := 0; i < n; i++ {
		names = append(names, ShardHeapName(base, i))
	}
	return names
}

// images snapshots every device of the set as a power-loss image
// (flushed lines only — the adversarial policy).
func images(t *testing.T, store *MemStore, base string, n int) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	for _, name := range setNames(base, n) {
		d, err := store.Open(name)
		if err != nil {
			t.Fatalf("open %q: %v", name, err)
		}
		out[name] = d.CrashImage(nvm.CrashFlushedOnly, 0)
	}
	return out
}

// storeFrom builds a fresh store whose devices reboot from the images.
func storeFrom(t *testing.T, imgs map[string][]byte) *MemStore {
	t.Helper()
	ns := NewMemStore()
	for name, img := range imgs {
		cp := make([]byte, len(img))
		copy(cp, img)
		if err := ns.Register(name, nvm.FromImage(cp, nvm.Config{Mode: nvm.Tracked})); err != nil {
			t.Fatal(err)
		}
	}
	return ns
}

// verifySet checks the set holds exactly model.
func verifySet(t *testing.T, tag string, set *Set, model map[int64]int64) {
	t.Helper()
	if got := set.Len(); got != len(model) {
		t.Fatalf("%s: Len = %d, want %d", tag, got, len(model))
	}
	c := set.NewCtx()
	defer c.Release()
	for k, v := range model {
		got, ok := c.Get(k)
		if !ok || got != v {
			t.Fatalf("%s: key %d = (%d, %v), want %d", tag, k, got, ok, v)
		}
	}
	seen := 0
	c.Scan(func(k, v int64) bool {
		seen++
		if want, ok := model[k]; !ok || want != v {
			t.Errorf("%s: scan saw %d=%d, model says (%d, %v)", tag, k, v, want, ok)
		}
		return true
	})
	if seen != len(model) {
		t.Fatalf("%s: scan visited %d entries, want %d", tag, seen, len(model))
	}
}

func testOptions(shards int) Options {
	return Options{Shards: shards, ShardDataSize: 2 << 20, Mode: nvm.Tracked}
}

func TestManifestRoundTrip(t *testing.T) {
	m := &Manifest{Shards: 4, ShardDataSize: 8 << 20, Bounds: EqualBounds(4)}
	dev := nvm.New(nvm.Config{Size: ManifestDeviceSize, Mode: nvm.Tracked})
	if IsManifest(dev) {
		t.Fatal("zero device recognized as manifest")
	}
	if err := WriteManifest(dev, m); err != nil {
		t.Fatal(err)
	}
	if !IsManifest(dev) {
		t.Fatal("written manifest not recognized")
	}
	// The crash rule: everything WriteManifest wrote must be persisted —
	// the rebooted image must decode identically.
	re := nvm.FromImage(dev.CrashImage(nvm.CrashFlushedOnly, 0), nvm.Config{Mode: nvm.Tracked})
	got, err := ReadManifest(re)
	if err != nil {
		t.Fatal(err)
	}
	if got.Shards != m.Shards || got.ShardDataSize != m.ShardDataSize || len(got.Bounds) != 4 {
		t.Fatalf("round trip mangled manifest: %+v", got)
	}
	for i := range m.Bounds {
		if got.Bounds[i] != m.Bounds[i] {
			t.Fatalf("bound %d: %d != %d", i, got.Bounds[i], m.Bounds[i])
		}
	}
}

func TestManifestRejectsBadBounds(t *testing.T) {
	dev := nvm.New(nvm.Config{Size: ManifestDeviceSize, Mode: nvm.Tracked})
	bad := []*Manifest{
		{Shards: 2, ShardDataSize: 1 << 20, Bounds: []uint64{1, 100}},    // first bound must be 0
		{Shards: 2, ShardDataSize: 1 << 20, Bounds: []uint64{0, 0}},      // not increasing
		{Shards: 3, ShardDataSize: 1 << 20, Bounds: []uint64{0, 5}},      // wrong count
		{Shards: 0, ShardDataSize: 1 << 20, Bounds: nil},                 // no shards
		{Shards: MaxShards + 1, ShardDataSize: 1 << 20, Bounds: nil},     // too many
	}
	for i, m := range bad {
		if err := WriteManifest(dev, m); err == nil {
			t.Errorf("case %d: bad manifest %+v accepted", i, m)
		}
	}
}

func TestRoutingSpreadsAndIsStable(t *testing.T) {
	m := &Manifest{Shards: 4, ShardDataSize: 1 << 20, Bounds: EqualBounds(4)}
	perShard := make([]int, 4)
	for k := int64(0); k < 4096; k++ {
		i := m.ShardOf(k)
		if i < 0 || i >= 4 {
			t.Fatalf("key %d routed to shard %d", k, i)
		}
		if j := m.ShardOf(k); j != i {
			t.Fatalf("key %d routed to %d then %d", k, i, j)
		}
		perShard[i]++
	}
	for i, n := range perShard {
		if n == 0 {
			t.Fatalf("shard %d got no keys out of 4096 (spread %v)", i, perShard)
		}
	}
}

func TestCreatePutReopen(t *testing.T) {
	store := NewMemStore()
	set, err := OpenSet(store, "kv", testOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	gen0 := set.Manifest().Generation
	model := make(map[int64]int64)
	c := set.NewCtx()
	for k := int64(0); k < 500; k++ {
		if err := c.Put(k, k*10); err != nil {
			t.Fatal(err)
		}
		model[k] = k * 10
	}
	for k := int64(0); k < 500; k += 5 {
		if !c.Delete(k) {
			t.Fatalf("delete %d: not present", k)
		}
		delete(model, k)
	}
	c.Release()
	verifySet(t, "live", set, model)

	// Reboot: only flushed state survives; every committed mapping must.
	store2 := storeFrom(t, images(t, store, "kv", 4))
	set2, err := OpenSet(store2, "kv", Options{Mode: nvm.Tracked})
	if err != nil {
		t.Fatal(err)
	}
	if set2.NumShards() != 4 {
		t.Fatalf("reopened with %d shards", set2.NumShards())
	}
	if g := set2.Manifest().Generation; g != gen0+1 {
		t.Fatalf("generation %d after reopen, want %d", g, gen0+1)
	}
	for i := 0; i < 4; i++ {
		if set2.Shard(i).Recovery().Created {
			t.Fatalf("shard %d reported Created on reopen", i)
		}
	}
	verifySet(t, "reopened", set2, model)

	// Routing must agree across the reboot (same persisted bounds).
	for k := int64(0); k < 500; k++ {
		if set.ShardOf(k) != set2.ShardOf(k) {
			t.Fatalf("key %d routed to %d before, %d after", k, set.ShardOf(k), set2.ShardOf(k))
		}
	}
}

func TestManifestOnlyStoreRecreatesShards(t *testing.T) {
	// A crash after the manifest was persisted but before any shard was
	// registered: the manifest-first rule says this must open as an empty
	// set with every shard recreated.
	store := NewMemStore()
	mani := &Manifest{Shards: 3, ShardDataSize: 1 << 20, Bounds: EqualBounds(3)}
	dev := nvm.New(nvm.Config{Size: ManifestDeviceSize, Mode: nvm.Tracked})
	if err := WriteManifest(dev, mani); err != nil {
		t.Fatal(err)
	}
	if err := store.Register(ManifestName("kv"), dev); err != nil {
		t.Fatal(err)
	}
	set, err := OpenSet(store, "kv", Options{Mode: nvm.Tracked})
	if err != nil {
		t.Fatal(err)
	}
	if set.NumShards() != 3 {
		t.Fatalf("NumShards = %d, want 3 (from manifest)", set.NumShards())
	}
	for i := 0; i < 3; i++ {
		if !set.Shard(i).Recovery().Created {
			t.Fatalf("shard %d not recreated", i)
		}
	}
	if set.Len() != 0 {
		t.Fatalf("Len = %d on recreated set", set.Len())
	}
	c := set.NewCtx()
	defer c.Release()
	if err := c.Put(7, 70); err != nil {
		t.Fatal(err)
	}
	if v, ok := c.Get(7); !ok || v != 70 {
		t.Fatalf("put/get on recreated set: (%d, %v)", v, ok)
	}
}

func TestPartiallyCreatedSetTolerated(t *testing.T) {
	// A crash midway through set creation: manifest plus a strict subset
	// of the shard images. The missing shards are recreated empty; the
	// present ones keep their committed data.
	store := NewMemStore()
	set, err := OpenSet(store, "kv", testOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	model := make(map[int64]int64)
	c := set.NewCtx()
	for k := int64(0); k < 400; k++ {
		if err := c.Put(k, k+1); err != nil {
			t.Fatal(err)
		}
		model[k] = k + 1
	}
	c.Release()

	imgs := images(t, store, "kv", 4)
	surviving := map[int]bool{0: true, 2: true}
	partial := make(map[string][]byte)
	partial[ManifestName("kv")] = imgs[ManifestName("kv")]
	for i := range surviving {
		partial[ShardHeapName("kv", i)] = imgs[ShardHeapName("kv", i)]
	}
	set2, err := OpenSet(storeFrom(t, partial), "kv", Options{Mode: nvm.Tracked})
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[int64]int64)
	for k, v := range model {
		if surviving[set.ShardOf(k)] {
			want[k] = v
		}
	}
	for i := 0; i < 4; i++ {
		if got := set2.Shard(i).Recovery().Created; got == surviving[i] {
			t.Fatalf("shard %d: Created = %v, surviving = %v", i, got, surviving[i])
		}
	}
	verifySet(t, "partial", set2, want)
}

func TestGCShardStaggersAndPreserves(t *testing.T) {
	store := NewMemStore()
	set, err := OpenSet(store, "kv", testOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	model := make(map[int64]int64)
	c := set.NewCtx()
	for k := int64(0); k < 600; k++ {
		if err := c.Put(k, k*3); err != nil {
			t.Fatal(err)
		}
		model[k] = k * 3
	}
	// Garbage: overwrite half the values (dead boxes), delete a slice.
	for k := int64(0); k < 300; k++ {
		if err := c.Put(k, k*7); err != nil {
			t.Fatal(err)
		}
		model[k] = k * 7
	}
	for k := int64(300); k < 350; k++ {
		c.Delete(k)
		delete(model, k)
	}
	c.Release()

	// Collect one shard at a time; siblings' devices must see zero
	// traffic — the no-shared-fence property, observed at the device.
	for i := 0; i < set.NumShards(); i++ {
		var before []nvm.Stats
		for j := 0; j < set.NumShards(); j++ {
			before = append(before, set.Shard(j).Heap().Device().Stats())
		}
		if _, err := set.GCShard(i); err != nil {
			t.Fatalf("GCShard(%d): %v", i, err)
		}
		for j := 0; j < set.NumShards(); j++ {
			delta := set.Shard(j).Heap().Device().Stats().Sub(before[j])
			if j != i && (delta.Writes != 0 || delta.Flushes != 0) {
				t.Fatalf("collecting shard %d touched shard %d's device: %+v", i, j, delta)
			}
		}
	}
	verifySet(t, "post-gc", set, model)

	// And the collected state is the durable one.
	set2, err := OpenSet(storeFrom(t, images(t, store, "kv", 4)), "kv", Options{Mode: nvm.Tracked})
	if err != nil {
		t.Fatal(err)
	}
	verifySet(t, "post-gc-reboot", set2, model)
}

func TestRecoveryWorkerCountByteIdentical(t *testing.T) {
	imgs, _, _ := buildCrashedScenario(t)
	var ref map[string][]byte
	for _, workers := range []int{1, 2, 4} {
		store := storeFrom(t, imgs)
		set, err := OpenSet(store, "kv", Options{Mode: nvm.Tracked, RecoveryWorkers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := images(t, store, "kv", set.NumShards())
		if ref == nil {
			ref = got
			continue
		}
		for name, img := range got {
			if !bytes.Equal(img, ref[name]) {
				t.Fatalf("workers=%d: device %q diverged from workers=1 image", workers, name)
			}
		}
	}
}

func TestOpenSetRejectsBadShardCount(t *testing.T) {
	for _, n := range []int{-1, MaxShards + 1} {
		if _, err := OpenSet(NewMemStore(), "kv", Options{Shards: n}); err == nil {
			t.Errorf("shard count %d accepted", n)
		}
	}
}

func TestLastRecoveryExposed(t *testing.T) {
	// Shard recovery stats flow out through Shard.Recovery: a rebooted
	// set must report device traffic for each recovered shard.
	store := NewMemStore()
	set, err := OpenSet(store, "kv", testOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	c := set.NewCtx()
	for k := int64(0); k < 200; k++ {
		if err := c.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	c.Release()
	set2, err := OpenSet(storeFrom(t, images(t, store, "kv", 2)), "kv", Options{Mode: nvm.Tracked})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		rec := set2.Shard(i).Recovery()
		if rec.Created {
			t.Fatalf("shard %d recreated instead of recovered", i)
		}
		if rec.Dev.Reads == 0 {
			t.Fatalf("shard %d recovery reported no device reads: %+v", i, rec)
		}
		if rec.Index.Entries == 0 {
			t.Fatalf("shard %d index recovery saw no entries", i)
		}
	}
}

func TestSetNamesAreValidHeapNames(t *testing.T) {
	// DirStore routes these through namemgr, which enforces its name
	// regex; the derived names must pass for any legal base.
	for _, base := range []string{"kv", "a", "my-set.v2"} {
		for _, n := range setNames(base, 3) {
			if len(n) == 0 || len(n) > 128 {
				t.Fatalf("derived name %q out of range", n)
			}
		}
	}
	if got := ShardHeapName("kv", 7); got != "kv-s7" {
		t.Fatalf("ShardHeapName = %q", got)
	}
	if got := ManifestName("kv"); got != "kv-manifest" {
		t.Fatalf("ManifestName = %q", got)
	}
}

func ExampleSet() {
	store := NewMemStore()
	set, _ := OpenSet(store, "sessions", Options{Shards: 2, ShardDataSize: 1 << 20})
	c := set.NewCtx()
	defer c.Release()
	_ = c.Put(42, 1000)
	v, ok := c.Get(42)
	fmt.Println(v, ok, set.NumShards())
	// Output: 1000 true 2
}
