package pshard

import (
	"fmt"
	"sync"

	"espresso/internal/namemgr"
	"espresso/internal/nvm"
)

// Store is where a shard set's devices live: the manifest plus one heap
// device per shard, addressed by name. The two tiers mirror namemgr's —
// an in-memory store for single-process use (benchmarks, crash-image
// tests) and a directory store whose images survive process restarts.
type Store interface {
	// Exists reports whether a device is registered under name.
	Exists(name string) bool
	// Register records a freshly created device; it is an error if the
	// name is taken.
	Register(name string, dev *nvm.Device) error
	// Open returns the device registered under name.
	Open(name string) (*nvm.Device, error)
	// Sync persists the named device to the store's backing tier, if any.
	Sync(name string) error
}

// MemStore is the in-memory tier: devices live exactly as long as the
// process (or as long as a test keeps their crash images). The zero
// value is not usable; call NewMemStore.
type MemStore struct {
	mu   sync.Mutex
	devs map[string]*nvm.Device
}

// NewMemStore creates an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{devs: make(map[string]*nvm.Device)} }

// Exists reports whether name is registered.
func (s *MemStore) Exists(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.devs[name]
	return ok
}

// Register records dev under name.
func (s *MemStore) Register(name string, dev *nvm.Device) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.devs[name]; dup {
		return fmt.Errorf("pshard: device %q already exists", name)
	}
	s.devs[name] = dev
	return nil
}

// Open returns the device registered under name.
func (s *MemStore) Open(name string) (*nvm.Device, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	dev, ok := s.devs[name]
	if !ok {
		return nil, fmt.Errorf("pshard: device %q does not exist", name)
	}
	return dev, nil
}

// Sync is a no-op: memory is the only tier.
func (s *MemStore) Sync(string) error { return nil }

// DirStore adapts a namemgr.Manager (heap-name → image file mapping) as
// a shard store, so sharded sets share the external name manager's
// directory layout: <dir>/<name>.pjh per shard plus
// <dir>/<base>-manifest.pjh.
type DirStore struct{ Mgr *namemgr.Manager }

// Exists reports whether the manager knows name (memory or disk).
func (s DirStore) Exists(name string) bool { return s.Mgr.Exists(name) }

// Register records dev under name with the manager.
func (s DirStore) Register(name string, dev *nvm.Device) error {
	return s.Mgr.Register(name, dev)
}

// Open returns the device backing name, loading its file if needed.
func (s DirStore) Open(name string) (*nvm.Device, error) { return s.Mgr.Device(name) }

// Sync writes the named device's persisted image to its file.
func (s DirStore) Sync(name string) error { return s.Mgr.Sync(name) }
