package pshard

import (
	"sync"
	"testing"
)

// TestShardedParallelOps hammers the set from many goroutines — each
// with its own Ctx, each owning a disjoint key range — while a collector
// goroutine staggers collections across the shards. Run under -race in
// CI (the race-index job); the property checked here is that per-shard
// world locks are the only coordination the design needs.
func TestShardedParallelOps(t *testing.T) {
	set, err := OpenSet(NewMemStore(), "race", Options{Shards: 4, ShardDataSize: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const perG = 250
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := set.NewCtx()
			defer c.Release()
			for i := 0; i < perG; i++ {
				k := int64(g)*1_000_000 + int64(i)
				if err := c.Put(k, k*3); err != nil {
					t.Errorf("put %d: %v", k, err)
					return
				}
				if v, ok := c.Get(k); !ok || v != k*3 {
					t.Errorf("get %d = (%d, %v) right after put", k, v, ok)
					return
				}
				if i%7 == 0 {
					if !c.Delete(k) {
						t.Errorf("delete %d: not present", k)
						return
					}
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; round < 3; round++ {
			for i := 0; i < set.NumShards(); i++ {
				if _, err := set.GCShard(i); err != nil {
					t.Errorf("GCShard(%d): %v", i, err)
					return
				}
			}
		}
	}()
	wg.Wait()
	if t.Failed() {
		return
	}

	model := make(map[int64]int64)
	for g := 0; g < goroutines; g++ {
		for i := 0; i < perG; i++ {
			if i%7 == 0 {
				continue
			}
			k := int64(g)*1_000_000 + int64(i)
			model[k] = k * 3
		}
	}
	verifySet(t, "quiescent", set, model)
}
