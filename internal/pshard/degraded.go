package pshard

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"espresso/internal/telemetry"
	"espresso/internal/telemetry/blackbox"
)

// ErrShardQuarantined is the sentinel every quarantine-routed failure
// matches: errors.Is(err, ErrShardQuarantined) holds for any operation
// that hit a fenced-off shard of a degraded set.
var ErrShardQuarantined = errors.New("pshard: shard quarantined")

// QuarantinedError carries which shard was fenced off and why. It
// matches ErrShardQuarantined via errors.Is and unwraps to the
// underlying recovery failure.
type QuarantinedError struct {
	Shard int
	Cause error
}

func (e *QuarantinedError) Error() string {
	if e.Cause == nil {
		return fmt.Sprintf("pshard: shard %d quarantined", e.Shard)
	}
	return fmt.Sprintf("pshard: shard %d quarantined: %v", e.Shard, e.Cause)
}

func (e *QuarantinedError) Is(target error) bool { return target == ErrShardQuarantined }
func (e *QuarantinedError) Unwrap() error        { return e.Cause }

// quarShard is one shard's quarantine state. The zero value is healthy.
// mu guards the fields; retryMu serializes reopen attempts (held across
// the whole attempt, which mu must not be).
type quarShard struct {
	mu       sync.Mutex
	err      error // why the shard is fenced off; nil when healthy
	attempts int   // consecutive failures
	next     time.Time // earliest automatic retry
	retryMu  sync.Mutex
}

// quarantine fences shard i off: the slot goes nil (operations start
// bouncing with ErrShardQuarantined), the cause and backoff schedule are
// recorded, and the retry loop is kicked. Safe from the open fan-out and
// from retry failures alike.
func (s *Set) quarantine(i int, cause error) {
	s.shards[i].Store(nil)
	q := &s.quar[i]
	q.mu.Lock()
	q.err = cause
	q.attempts++
	q.next = time.Now().Add(s.backoff(q.attempts))
	q.mu.Unlock()
	s.tel.Shared().AtomicInc(telemetry.CtrShardQuarantined)
	// The failing shard's own ring is unreachable, so the event lands in
	// the first healthy sibling's journal (if any survives to carry it).
	for j := range s.shards {
		if sh := s.shard(j); sh != nil {
			sh.heap.FlightRecorder().Append(blackbox.EvShardQuarantined,
				uint64(i), uint64(q.attempts), 0)
			break
		}
	}
	s.kickRetry()
}

// backoff maps the k-th consecutive failure to a wait:
// min(RetryBase<<(k-1), RetryCap).
func (s *Set) backoff(attempts int) time.Duration {
	d := s.opts.RetryBase
	for k := 1; k < attempts && d < s.opts.RetryCap; k++ {
		d *= 2
	}
	if d > s.opts.RetryCap {
		d = s.opts.RetryCap
	}
	return d
}

// Quarantined lists the currently fenced-off shards (empty outside
// degraded mode).
func (s *Set) Quarantined() []int {
	var out []int
	for i := range s.quar {
		q := &s.quar[i]
		q.mu.Lock()
		bad := q.err != nil
		q.mu.Unlock()
		if bad {
			out = append(out, i)
		}
	}
	return out
}

// QuarantineCause reports why shard i is fenced off (nil when healthy).
func (s *Set) QuarantineCause(i int) error {
	q := &s.quar[i]
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.err
}

// RetryQuarantined synchronously attempts to reopen every quarantined
// shard right now, ignoring backoff timers, and returns the shards that
// came back. Deterministic tests and operators use this instead of
// waiting out the background loop.
func (s *Set) RetryQuarantined() []int {
	var healed []int
	for i := range s.quar {
		q := &s.quar[i]
		q.mu.Lock()
		bad := q.err != nil
		q.mu.Unlock()
		if bad && s.attemptReopen(i) {
			healed = append(healed, i)
		}
	}
	return healed
}

// attemptReopen runs one reopen of shard i, reporting success. The
// per-shard retryMu means a background retry and a RetryQuarantined
// call never reopen the same shard twice concurrently.
func (s *Set) attemptReopen(i int) bool {
	q := &s.quar[i]
	q.retryMu.Lock()
	defer q.retryMu.Unlock()
	q.mu.Lock()
	if q.err == nil {
		q.mu.Unlock()
		return true // a concurrent attempt already healed it
	}
	q.mu.Unlock()
	err := protect(s.recoverShard, i)
	q.mu.Lock()
	defer q.mu.Unlock()
	if err != nil {
		q.attempts++
		q.err = err
		q.next = time.Now().Add(s.backoff(q.attempts))
		return false
	}
	q.err = nil
	q.attempts = 0
	return true
}

// retryLoop is the background reopen driver: it sleeps until the
// earliest scheduled retry (or until a new quarantine kicks it), then
// attempts every due shard. It exits on Close.
func (s *Set) retryLoop() {
	defer close(s.retryDone)
	for {
		wait := time.Duration(-1)
		now := time.Now()
		for i := range s.quar {
			q := &s.quar[i]
			q.mu.Lock()
			if q.err != nil {
				d := q.next.Sub(now)
				if d < 0 {
					d = 0
				}
				if wait < 0 || d < wait {
					wait = d
				}
			}
			q.mu.Unlock()
		}
		if wait < 0 {
			wait = time.Hour // nothing quarantined; a kick wakes us
		}
		t := time.NewTimer(wait)
		select {
		case <-s.retryStop:
			t.Stop()
			return
		case <-s.retryKick:
			t.Stop()
			continue
		case <-t.C:
		}
		now = time.Now()
		for i := range s.quar {
			q := &s.quar[i]
			q.mu.Lock()
			due := q.err != nil && !q.next.After(now)
			q.mu.Unlock()
			if due {
				s.attemptReopen(i)
			}
		}
	}
}

// kickRetry nudges the background loop without blocking (the buffered
// channel absorbs kicks that race an in-flight wake-up).
func (s *Set) kickRetry() {
	if s.retryKick == nil {
		return
	}
	select {
	case s.retryKick <- struct{}{}:
	default:
	}
}

// Close stops the background retry loop (if one is running) and waits
// for it to exit. Idempotent; a nil-loop set closes trivially. The
// shards themselves hold no OS resources — their devices stay readable
// through the store after Close.
func (s *Set) Close() {
	s.closeOnce.Do(func() {
		if s.retryStop != nil {
			close(s.retryStop)
			<-s.retryDone
		}
	})
}
