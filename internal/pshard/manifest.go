// Package pshard implements range-partitioned multi-heap sharding: a
// consistent-hash-range router over N fully independent persistent heaps.
// Each shard owns its own nvm.Device, klass registry, pheap region-top
// table and redo log, pindex map, GC phase word, and safepoint domain —
// no lock, cache line, or fence is ever shared between shards, so GC
// pauses stagger across shards instead of stacking and restart-time
// recovery fans out across them.
//
// # The manifest
//
// A sharded set is described by a small dedicated device, the manifest:
// magic, version, shard count, the hash-range boundary table, the
// per-shard heap size, and a generation counter. The crash rule of set
// creation is manifest-first: the manifest is fully written, flushed, and
// fenced before any shard heap is registered, so recovery can always
// re-derive the complete shard list from the manifest alone. A crash
// that strands a partially-created shard set is tolerated — OpenSet
// recreates any shard image the store is missing as a fresh empty shard
// (legal exactly because no operation can have committed to a shard that
// was never durably registered). After creation the manifest is
// immutable except for the generation word, which each successful open
// bumps with a single 8-byte write + flush — trivially all-old-or-all-new.
//
// # Routing
//
// Keys route by hash range: shard i owns mixed-hash values in
// [Bounds[i], Bounds[i+1]), with layout.MixHash64 as the shared persisted
// finalizer (the same one pindex buckets hash with). The boundary table
// is persisted rather than recomputed so a future resharding PR can move
// range edges without breaking routing of existing images.
package pshard

import (
	"fmt"
	"math"
	"sort"

	"espresso/internal/layout"
	"espresso/internal/nvm"
)

// ManifestMagic identifies a shard-manifest device ("ESPRSHRD").
const ManifestMagic = 0x4553_5052_5348_5244

// ManifestVersion is the current manifest format. v2 added the metadata
// checksum word; v1 images are upgraded in place on reopen.
const ManifestVersion = 2

// manifestVersionChecksum is the first format carrying the checksum.
const manifestVersionChecksum = 2

// ManifestDeviceSize is the manifest device's fixed size. 4 KB holds the
// header plus a boundary word for every shard up to MaxShards.
const ManifestDeviceSize = 4096

// MaxShards bounds the shard count (the boundary table must fit the
// manifest device; 256 is far past the point where per-shard fixed
// costs — heap metadata, bucket tables, idle PLAB regions — dominate).
const MaxShards = 256

// Manifest device field offsets.
const (
	manMagic      = 0
	manVersion    = 8
	manState      = 16
	manShards     = 24
	manGeneration = 32
	manShardSize  = 40
	manBounds     = 48 // shardCount boundary words follow
	// manSum sits past the largest possible boundary table so the
	// checksum's offset never depends on the shard count.
	manSum = manBounds + 8*MaxShards
)

// Exported manifest field offsets for fault-injection tests and the
// faults experiment: the state word, the boundary table, and the
// checksum word are the checksummed structures corruption sweeps target.
const (
	ManifestStateOff  = manState
	ManifestBoundsOff = manBounds
	ManifestSumOff    = manSum
)

// Manifest state word values.
const (
	// manifestComplete is written (and flushed) before any shard heap is
	// created; it is the only state a readable manifest can carry. The
	// constant exists so a future resharding protocol can introduce
	// transitional states without a format bump.
	manifestComplete = 1
)

// manifestSum checksums the manifest's immutable metadata: state, shard
// count, shard size, and the whole boundary table. The generation word
// is deliberately excluded — it is the manifest's one post-creation
// mutation, a single-word bump that must stay all-old-or-all-new with
// no companion write. The version word is excluded too, so the v1→v2
// upgrade can stamp the sum and bump the version in separate ordered
// steps (a crash between them leaves a valid v1 image). Same mixer as
// the flight recorder and pheap metadata checksums.
func manifestSum(dev *nvm.Device, n int) uint64 {
	const mult = 0x9E3779B97F4A7C15
	mix := func(s, w uint64) uint64 {
		s ^= w
		s *= mult
		s ^= s >> 29
		return s
	}
	s := mix(ManifestMagic, dev.ReadU64(manState))
	s = mix(s, dev.ReadU64(manShards))
	s = mix(s, dev.ReadU64(manShardSize))
	for i := 0; i < n; i++ {
		s = mix(s, dev.ReadU64(manBounds+8*i))
	}
	return s
}

// Manifest is the decoded shard-set description.
type Manifest struct {
	Shards        int
	Generation    uint64
	ShardDataSize int
	// Bounds[i] is the first mixed-hash value shard i owns; shard i's
	// range is [Bounds[i], Bounds[i+1]) with the last shard owning
	// through MaxUint64. Bounds[0] is always 0.
	Bounds []uint64
}

// ManifestName derives the store name of a set's manifest device.
func ManifestName(base string) string { return base + "-manifest" }

// ShardHeapName derives the store name of shard i's heap device.
func ShardHeapName(base string, i int) string { return fmt.Sprintf("%s-s%d", base, i) }

// EqualBounds builds the boundary table for n equal hash ranges.
func EqualBounds(n int) []uint64 {
	step := math.MaxUint64 / uint64(n)
	bounds := make([]uint64, n)
	for i := 1; i < n; i++ {
		bounds[i] = uint64(i) * step
	}
	return bounds
}

// ShardOf routes a key: the shard whose range contains the key's mixed
// hash.
func (m *Manifest) ShardOf(key int64) int {
	h := layout.MixHash64(key)
	// First boundary strictly above h, minus one. Bounds[0]==0, so the
	// result is always a valid index.
	return sort.Search(len(m.Bounds), func(i int) bool { return m.Bounds[i] > h }) - 1
}

// IsManifest reports whether dev carries a shard manifest (tooling uses
// this to tell a manifest image from a heap image before parsing).
func IsManifest(dev *nvm.Device) bool {
	return dev.Size() >= manBounds && dev.ReadU64(manMagic) == ManifestMagic
}

// WriteManifest initializes dev as a complete manifest and persists it —
// every field flushed with one trailing fence. The caller must do this
// BEFORE creating any shard heap (the set-creation crash rule).
func WriteManifest(dev *nvm.Device, m *Manifest) error {
	if m.Shards < 1 || m.Shards > MaxShards {
		return fmt.Errorf("pshard: shard count %d outside [1, %d]", m.Shards, MaxShards)
	}
	if len(m.Bounds) != m.Shards || m.Bounds[0] != 0 {
		return fmt.Errorf("pshard: boundary table must have %d entries starting at 0", m.Shards)
	}
	for i := 1; i < len(m.Bounds); i++ {
		if m.Bounds[i] <= m.Bounds[i-1] {
			return fmt.Errorf("pshard: boundary table not strictly increasing at %d", i)
		}
	}
	if dev.Size() < manSum+8 {
		return fmt.Errorf("pshard: manifest device too small for %d shards", m.Shards)
	}
	dev.WriteU64(manMagic, ManifestMagic)
	dev.WriteU64(manVersion, ManifestVersion)
	dev.WriteU64(manState, manifestComplete)
	dev.WriteU64(manShards, uint64(m.Shards))
	dev.WriteU64(manGeneration, m.Generation)
	dev.WriteU64(manShardSize, uint64(m.ShardDataSize))
	for i, b := range m.Bounds {
		dev.WriteU64(manBounds+8*i, b)
	}
	dev.WriteU64(manSum, manifestSum(dev, m.Shards))
	dev.Flush(0, manBounds+8*m.Shards)
	dev.Flush(manSum, 8)
	dev.Fence()
	return nil
}

// ReadManifest decodes and validates a manifest device.
func ReadManifest(dev *nvm.Device) (*Manifest, error) {
	if !IsManifest(dev) {
		return nil, fmt.Errorf("pshard: not a shard manifest (magic %#x)", dev.ReadU64(manMagic))
	}
	v := dev.ReadU64(manVersion)
	if v < 1 || v > ManifestVersion {
		return nil, fmt.Errorf("pshard: manifest version %d, want <= %d", v, ManifestVersion)
	}
	if st := dev.ReadU64(manState); st != manifestComplete {
		return nil, fmt.Errorf("pshard: manifest state %d is not complete", st)
	}
	n := int(dev.ReadU64(manShards))
	if n < 1 || n > MaxShards || dev.Size() < manBounds+8*n {
		return nil, fmt.Errorf("pshard: manifest shard count %d invalid", n)
	}
	if v >= manifestVersionChecksum && dev.ReadU64(manSum) != manifestSum(dev, n) {
		return nil, fmt.Errorf("pshard: manifest checksum mismatch")
	}
	m := &Manifest{
		Shards:        n,
		Generation:    dev.ReadU64(manGeneration),
		ShardDataSize: int(dev.ReadU64(manShardSize)),
		Bounds:        make([]uint64, n),
	}
	for i := 0; i < n; i++ {
		m.Bounds[i] = dev.ReadU64(manBounds + 8*i)
	}
	if m.Bounds[0] != 0 {
		return nil, fmt.Errorf("pshard: manifest boundary table does not start at 0")
	}
	for i := 1; i < n; i++ {
		if m.Bounds[i] <= m.Bounds[i-1] {
			return nil, fmt.Errorf("pshard: manifest boundary table not strictly increasing at %d", i)
		}
	}
	return m, nil
}

// upgradeManifest stamps the v2 checksum onto a v1 manifest in place.
// Order matters: the sum persists (flush + fence) before the version
// word flips, so a crash between the two leaves a valid v1 image that
// the next open simply upgrades again.
func upgradeManifest(dev *nvm.Device, m *Manifest) {
	if dev.ReadU64(manVersion) >= manifestVersionChecksum {
		return
	}
	dev.WriteU64(manSum, manifestSum(dev, m.Shards))
	dev.Flush(manSum, 8)
	dev.Fence()
	dev.WriteU64(manVersion, ManifestVersion)
	dev.Flush(manVersion, 8)
	dev.Fence()
}

// bumpGeneration records a completed open: one atomic word, one flushed
// line, one fence — the manifest's only post-creation mutation.
func bumpGeneration(dev *nvm.Device, gen uint64) {
	dev.WriteU64(manGeneration, gen)
	dev.Flush(manGeneration, 8)
	dev.Fence()
}
