package pshard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/nvm"
	"espresso/internal/pgc"
	"espresso/internal/pheap"
	"espresso/internal/pindex"
	"espresso/internal/telemetry"
	"espresso/internal/telemetry/blackbox"
)

// IndexRootName is the per-shard pindex root name. Every shard carries
// the same root; the shard's heap device is what distinguishes them.
const IndexRootName = "pshard-kv"

// BoxKlassName is the per-shard boxed-value class (one long field) the
// Long-value API stores under the index.
const BoxKlassName = "pshard/Box"

// shardAddressWindow spaces shard heap address hints so any subset of a
// set's shards can be mapped into one address space (tooling, future
// cross-shard debugging) without a rebase.
const shardAddressWindow = layout.Ref(1) << 36

// Options sizes a shard set. Zero values select defaults. Shards and
// ShardDataSize matter only when the set is created; reopening reads
// them from the manifest.
type Options struct {
	// Shards is the shard count for a newly created set (default 4,
	// max MaxShards).
	Shards int
	// RecoveryWorkers bounds the recovery fan-out: how many shards
	// load/recover concurrently during OpenSet (default: one worker per
	// shard). The recovered images are byte-identical for every value —
	// shards never share a device.
	RecoveryWorkers int
	// ShardDataSize is each shard's data-heap size for a newly created
	// set (default 16 MB).
	ShardDataSize int
	// Index sizes each shard's pindex (per shard, not per set: a 4-shard
	// set with InitialBuckets 1024 has 4096 buckets in total).
	Index pindex.Options
	// Mode and WriteLatency configure every device the set creates.
	Mode         nvm.Mode
	WriteLatency time.Duration
	// Telemetry attaches a telemetry registry to each shard's heap (plus
	// one set-level registry for whole-set events), making counters,
	// phase spans, and device attribution observable per shard and — via
	// Set.Metrics — aggregated. Off by default: the disabled state is a
	// nil registry, which costs instrumented paths nothing.
	Telemetry bool
	// FlightRecorder enables the per-shard NVM flight recorder: each
	// shard's heap journals its publication points (open, recovery, GC)
	// into the ring its image always carries, and Set.FlightTimelines
	// decodes them post-mortem. Off by default; the disabled state is a
	// nil recorder, which appends nothing.
	FlightRecorder bool
	// Degraded switches OpenSet from fail-fast to fence-and-serve: a
	// shard whose image cannot be loaded or recovered is quarantined
	// instead of failing the whole open. Healthy shards serve
	// immediately, operations routed to a quarantined shard return
	// ErrShardQuarantined, and a background loop retries the shard with
	// capped exponential backoff until it reopens. Degraded recovery
	// runs in salvage mode (pheap.LoadSalvage, pindex salvage walks):
	// corrupt regions and unverifiable index entries are amputated and
	// reported — lost, never fabricated. The manifest itself stays
	// load-bearing in every mode: a set whose manifest is unreadable or
	// corrupt cannot route and fails OpenSet outright.
	Degraded bool
	// RetryBase and RetryCap bound the quarantine retry backoff: the
	// k-th consecutive failure schedules the next attempt after
	// min(RetryBase<<(k-1), RetryCap). Defaults 10ms and 1s.
	RetryBase time.Duration
	RetryCap  time.Duration
	// DisableRetryLoop suppresses the background reopen goroutine;
	// deterministic tests drive recovery with RetryQuarantined instead.
	DisableRetryLoop bool
}

func (o *Options) fillDefaults() error {
	if o.Shards == 0 {
		o.Shards = 4
	}
	if o.Shards < 1 || o.Shards > MaxShards {
		return fmt.Errorf("pshard: shard count %d outside [1, %d]", o.Shards, MaxShards)
	}
	if o.ShardDataSize == 0 {
		o.ShardDataSize = 16 << 20
	}
	if o.RetryBase <= 0 {
		o.RetryBase = 10 * time.Millisecond
	}
	if o.RetryCap <= 0 {
		o.RetryCap = time.Second
	}
	return nil
}

// Shard is one independent persistent heap plus its index. Nothing in a
// Shard is shared with its siblings: the device, the klass registry, the
// region-top table, the redo log, the GC phase word, and the safepoint
// domain below are all per-shard.
type Shard struct {
	// world is the shard's safepoint lock: every Ctx operation on this
	// shard runs under a read lock, and the shard's collector pauses
	// take the write lock. Because each shard has its own, a collection
	// of shard 3 never blocks — or shares so much as a cache line with —
	// an operation on shard 5.
	world sync.RWMutex

	heap *pheap.Heap
	ix   *pindex.Index
	boxK *klass.Klass
	rec  RecoveryStats
}

// Heap exposes the shard's persistent heap (tooling, experiments).
func (sh *Shard) Heap() *pheap.Heap { return sh.heap }

// Telemetry exposes the shard's registry (nil when the set was opened
// without Options.Telemetry).
func (sh *Shard) Telemetry() *telemetry.Registry { return sh.heap.Telemetry() }

// Index exposes the shard's persistent index.
func (sh *Shard) Index() *pindex.Index { return sh.ix }

// Recovery reports what this shard's open-time recovery did.
func (sh *Shard) Recovery() RecoveryStats { return sh.rec }

// Set is an opened sharded map: the router plus its shards. Methods on
// Set are safe for concurrent use; per-goroutine mutations go through
// Ctx handles (NewCtx).
type Set struct {
	base    string
	store   Store
	opts    Options
	mani    *Manifest
	maniDev *nvm.Device
	// shards holds one atomically swappable slot per shard. A nil slot is
	// a quarantined shard (degraded mode only); a successful reopen
	// publishes the rebuilt Shard with a single pointer store, so readers
	// never observe a half-attached shard.
	shards []atomic.Pointer[Shard]
	// quar tracks per-shard quarantine state (cause, attempts, backoff).
	quar []quarShard
	// tel is the set-level registry (whole-set spans like shard.open and
	// the facade's ctx-pool gauges); each shard's heap carries its own.
	// Nil when Options.Telemetry is off.
	tel *telemetry.Registry

	retryStop chan struct{}
	retryKick chan struct{}
	retryDone chan struct{}
	closeOnce sync.Once
}

// shard returns shard i's current instance, or nil while quarantined.
func (s *Set) shard(i int) *Shard { return s.shards[i].Load() }

// Telemetry exposes the set-level registry (nil when telemetry is off).
func (s *Set) Telemetry() *telemetry.Registry { return s.tel }

// OpenSet opens (or creates) the sharded set registered under base in
// store.
//
// Creation follows the manifest-first crash rule: the manifest device is
// fully written, flushed, and fenced before any shard heap is
// registered.
//
// Reopening re-derives the shard list from the manifest and fans
// recovery out: per-shard heap loads, interrupted-collection recovery
// (pgc.RecoverIfNeeded), and index recovery (pindex.Open) run in up to
// RecoveryWorkers parallel goroutines, with per-shard errors joined — so
// restart time scales with the slowest shard, not the sum. A shard image
// missing from the store (a crash before set creation finished) is
// recreated empty. A second OpenSet after a crash *during* recovery is
// safe: every per-shard repair is idempotent, and the manifest's only
// mutation is the single-word generation bump at the end.
func OpenSet(store Store, base string, opts Options) (*Set, error) {
	if err := opts.fillDefaults(); err != nil {
		return nil, err
	}
	s := &Set{base: base, store: store, opts: opts}
	if opts.Telemetry {
		s.tel = telemetry.New()
	}
	if opts.Degraded {
		// The kick channel exists before any shard work so quarantines
		// during the open fan-out are not lost; the loop itself starts
		// only once the set is routable.
		s.retryKick = make(chan struct{}, 1)
	}
	openStart := time.Now()
	var err error
	if store.Exists(ManifestName(base)) {
		err = s.reopen()
	} else {
		err = s.create()
	}
	if err != nil {
		return s, err
	}
	// The whole open — all shards loaded, recovered, and attached,
	// joined across the recovery fan-out.
	s.tel.RecordSpan(telemetry.SpanShardOpen, -1, -1, openStart, time.Since(openStart))
	if opts.Degraded && !opts.DisableRetryLoop {
		s.retryStop = make(chan struct{})
		s.retryDone = make(chan struct{})
		go s.retryLoop()
	}
	return s, nil
}

// create builds a fresh set: manifest first (the crash rule), then the
// shard heaps — creation also fans out, shards being independent.
func (s *Set) create() error {
	mani := &Manifest{
		Shards:        s.opts.Shards,
		ShardDataSize: s.opts.ShardDataSize,
		Bounds:        EqualBounds(s.opts.Shards),
	}
	dev := nvm.New(nvm.Config{
		Size:         ManifestDeviceSize,
		Mode:         s.opts.Mode,
		WriteLatency: s.opts.WriteLatency,
	})
	if err := WriteManifest(dev, mani); err != nil {
		return err
	}
	if err := s.store.Register(ManifestName(s.base), dev); err != nil {
		return err
	}
	s.mani, s.maniDev = mani, dev
	s.shards = make([]atomic.Pointer[Shard], mani.Shards)
	s.quar = make([]quarShard, mani.Shards)
	if err := fanOut(mani.Shards, s.opts.RecoveryWorkers, s.createShard); err != nil {
		return err
	}
	bumpGeneration(s.maniDev, s.mani.Generation+1)
	s.mani.Generation++
	return nil
}

// createShard makes shard i from nothing and registers its device.
func (s *Set) createShard(i int) error {
	name := ShardHeapName(s.base, i)
	h, err := pheap.Create(klass.NewRegistry(), pheap.Config{
		Name:         name,
		AddressHint:  layout.DefaultPJHBase + layout.Ref(i)*shardAddressWindow,
		DataSize:     s.mani.ShardDataSize,
		Mode:         s.opts.Mode,
		WriteLatency: s.opts.WriteLatency,
	})
	if err != nil {
		return fmt.Errorf("pshard: creating shard %d: %w", i, err)
	}
	if s.opts.Telemetry {
		h.SetTelemetry(telemetry.New())
	}
	if s.opts.FlightRecorder {
		if _, err := h.EnableFlightRecorder(); err != nil {
			return fmt.Errorf("pshard: shard %d flight recorder: %w", i, err)
		}
	}
	if err := s.store.Register(name, h.Device()); err != nil {
		return err
	}
	sh, err := attachShard(h, s.opts.Index)
	if err != nil {
		return fmt.Errorf("pshard: shard %d: %w", i, err)
	}
	sh.rec.Created = true
	h.FlightRecorder().Append(blackbox.EvShardOpen, uint64(i), 0, 0)
	s.shards[i].Store(sh)
	return nil
}

// reopen recovers an existing set from its manifest.
func (s *Set) reopen() error {
	dev, err := s.store.Open(ManifestName(s.base))
	if err != nil {
		return err
	}
	mani, err := ReadManifest(dev)
	if err != nil {
		return err
	}
	upgradeManifest(dev, mani)
	s.mani, s.maniDev = mani, dev
	s.shards = make([]atomic.Pointer[Shard], mani.Shards)
	s.quar = make([]quarShard, mani.Shards)
	if err := fanOut(mani.Shards, s.opts.RecoveryWorkers, s.openShard); err != nil {
		return err
	}
	bumpGeneration(s.maniDev, s.mani.Generation+1)
	s.mani.Generation++
	return nil
}

// openShard is the reopen fan-out body: recoverShard, with failures
// converted into quarantines when the set opened degraded.
func (s *Set) openShard(i int) error {
	err := protect(s.recoverShard, i)
	if err != nil && s.opts.Degraded {
		s.quarantine(i, err)
		return nil
	}
	return err
}

// recoverShard loads and repairs shard i, or recreates it if its image
// never made it into the store (the partially-created-set tolerance).
func (s *Set) recoverShard(i int) error {
	name := ShardHeapName(s.base, i)
	if !s.store.Exists(name) {
		return s.createShard(i)
	}
	dev, err := s.store.Open(name)
	if err != nil {
		return err
	}
	t0 := time.Now()
	s0 := dev.Stats()
	var h *pheap.Heap
	var salv *pheap.SalvageReport
	if s.opts.Degraded {
		h, salv, err = pheap.LoadSalvage(dev, klass.NewRegistry())
	} else {
		h, err = pheap.Load(dev, klass.NewRegistry())
	}
	if err != nil {
		return fmt.Errorf("pshard: loading shard %d: %w", i, err)
	}
	h.SetName(name)
	// The registry attaches before recovery so the pgc and pindex
	// recovery spans (and their device attribution) land in this shard's
	// telemetry, not nowhere. Same for the flight recorder: recovery
	// events are the journal's reason to exist.
	if s.opts.Telemetry {
		h.SetTelemetry(telemetry.New())
	}
	if s.opts.FlightRecorder {
		if _, err := h.EnableFlightRecorder(); err != nil {
			return fmt.Errorf("pshard: shard %d flight recorder: %w", i, err)
		}
	}
	_, gcRecovered, err := pgc.RecoverIfNeeded(h)
	if err != nil {
		return fmt.Errorf("pshard: recovering shard %d: %w", i, err)
	}
	iopts := s.opts.Index
	iopts.Salvage = s.opts.Degraded
	sh, err := attachShard(h, iopts)
	if err != nil {
		return fmt.Errorf("pshard: shard %d: %w", i, err)
	}
	sh.rec = RecoveryStats{
		GCRecovered: gcRecovered,
		WallNS:      time.Since(t0).Nanoseconds(),
		Dev:         dev.Stats().Sub(s0),
		Index:       sh.ix.LastRecovery(),
		Salvage:     salv,
	}
	recovered := uint64(0)
	if gcRecovered {
		recovered = 1
	}
	h.FlightRecorder().Append(blackbox.EvShardOpen,
		uint64(i), recovered, uint64(sh.rec.Index.Entries))
	if (salv != nil && salv.Dirty()) || sh.rec.Index.Salvaged() {
		// The shard came back through amputation, not clean replay;
		// journal what it cost so a post-mortem sees the data loss.
		lost := 0
		if salv != nil {
			lost = len(salv.RegionsLost)
		}
		h.FlightRecorder().Append(blackbox.EvShardSalvaged,
			uint64(i), uint64(lost), uint64(sh.rec.Index.LostValues))
		h.Telemetry().Shared().AtomicAdd(telemetry.CtrSalvageRegionsLost, uint64(lost))
	}
	h.Telemetry().RecordSpan(telemetry.SpanShardRecover, i, -1, t0, time.Since(t0))
	s.shards[i].Store(sh)
	return nil
}

// attachShard opens the shard's index (running its recovery pass) and
// resolves the boxed-value class. The index is opened with NoPin: Ctx
// operations pin through the shard's own world lock, at whole-operation
// granularity, so a value box allocated just before a Put can never be
// moved out from under it by the shard's collector.
func attachShard(h *pheap.Heap, iopts pindex.Options) (*Shard, error) {
	ix, err := pindex.Open(h, pindex.NoPin{}, IndexRootName, iopts)
	if err != nil {
		return nil, err
	}
	boxK, err := h.Registry().Define(klass.MustInstance(BoxKlassName, nil,
		klass.Field{Name: "v", Type: layout.FTLong}))
	if err != nil {
		return nil, err
	}
	return &Shard{heap: h, ix: ix, boxK: boxK}, nil
}

// Base reports the set's store base name.
func (s *Set) Base() string { return s.base }

// NumShards reports the shard count.
func (s *Set) NumShards() int { return len(s.shards) }

// Shard exposes shard i. Nil while shard i is quarantined (degraded
// sets only; a fail-fast open never returns with a nil shard).
func (s *Set) Shard(i int) *Shard { return s.shard(i) }

// Manifest returns a copy of the decoded manifest.
func (s *Set) Manifest() Manifest {
	m := *s.mani
	m.Bounds = append([]uint64(nil), s.mani.Bounds...)
	return m
}

// ShardOf routes a key to its owning shard.
func (s *Set) ShardOf(key int64) int { return s.mani.ShardOf(key) }

// Len sums the shard entry counts (exact when quiescent). Quarantined
// shards contribute nothing — their entries are unreachable until the
// shard reopens.
func (s *Set) Len() int {
	n := 0
	for i := range s.shards {
		if sh := s.shard(i); sh != nil {
			n += sh.ix.Len()
		}
	}
	return n
}

// ShardMetrics snapshots shard i's telemetry registry. The snapshot is
// empty (all maps present, no data) when telemetry is off or the shard
// is quarantined.
func (s *Set) ShardMetrics(i int) telemetry.Snapshot {
	sh := s.shard(i)
	if sh == nil {
		return (*telemetry.Registry)(nil).Snapshot()
	}
	return sh.Telemetry().Snapshot()
}

// Metrics folds the set-level registry and every shard's registry into
// one aggregated snapshot: counters, gauges, and histogram buckets sum;
// spans concatenate in start order. Spans a shard's collectors recorded
// without a shard tag are stamped with their shard index here, so the
// merged timeline still says which shard paused.
func (s *Set) Metrics() telemetry.Snapshot {
	agg := s.tel.Snapshot()
	for i := range s.shards {
		sh := s.shard(i)
		if sh == nil {
			continue
		}
		snap := sh.Telemetry().Snapshot()
		for j := range snap.Spans {
			if snap.Spans[j].Shard < 0 {
				snap.Spans[j].Shard = i
			}
		}
		agg.Add(snap)
	}
	return agg
}

// FlightTimelines decodes every shard's flight-recorder ring into one
// merged, sequence-preserving view: each shard's timeline is returned in
// shard order, with every event re-tagged with its shard index (the
// on-media records carry no shard — the device identifies the shard, and
// the re-tag keeps that identity once timelines leave their devices).
// Decoding is read-only and works whether or not recording was enabled
// this run; an all-zero ring simply decodes to an empty timeline.
func (s *Set) FlightTimelines() ([]blackbox.Timeline, error) {
	out := make([]blackbox.Timeline, len(s.shards))
	for i := range s.shards {
		sh := s.shard(i)
		if sh == nil {
			continue // quarantined: its ring is unreachable until reopen
		}
		geo := sh.heap.Geo()
		if geo.BlackboxSize == 0 {
			continue // pre-flight-recorder image upgraded in place
		}
		tl, err := blackbox.Decode(sh.heap.Device(), geo.BlackboxOff, geo.BlackboxSize)
		if err != nil {
			return nil, fmt.Errorf("pshard: decoding shard %d journal: %w", i, err)
		}
		for j := range tl.Events {
			tl.Events[j].Shard = i
		}
		out[i] = tl
	}
	return out, nil
}

// GCShard runs a crash-consistent collection of one shard. Only that
// shard's operations pause — its world lock is taken for the compaction,
// while every other shard keeps serving. Collecting shards one at a time
// is how a sharded deployment staggers its pauses.
func (s *Set) GCShard(i int) (pgc.Result, error) {
	sh := s.shard(i)
	if sh == nil {
		return pgc.Result{}, &QuarantinedError{Shard: i, Cause: s.QuarantineCause(i)}
	}
	sh.world.Lock()
	defer sh.world.Unlock()
	// Journaled before the cycle so a crash mid-collection still shows
	// which shard was collecting; the append's flush precedes the
	// collection's first fence.
	sh.heap.FlightRecorder().Append(blackbox.EvShardGC, uint64(i), 0, 0)
	return pgc.Collect(sh.heap, pgc.NoRoots{})
}

// GCAll collects every shard, one at a time (staggered pauses: at any
// moment at most one shard is stopped). Quarantined shards are skipped
// — their zero-value Result slot records that nothing ran.
func (s *Set) GCAll() ([]pgc.Result, error) {
	res := make([]pgc.Result, len(s.shards))
	for i := range s.shards {
		if s.shard(i) == nil {
			continue
		}
		r, err := s.GCShard(i)
		if err != nil {
			return res, fmt.Errorf("pshard: collecting shard %d: %w", i, err)
		}
		res[i] = r
	}
	return res, nil
}

// Sync persists the manifest and every shard image to the store's
// backing tier (meaningful for DirStore).
func (s *Set) Sync() error {
	if err := s.store.Sync(ManifestName(s.base)); err != nil {
		return err
	}
	for i := range s.shards {
		name := ShardHeapName(s.base, i)
		if s.shard(i) == nil && !s.store.Exists(name) {
			continue // quarantined before its image ever registered
		}
		if err := s.store.Sync(name); err != nil {
			return err
		}
	}
	return nil
}
