package pshard

import (
	"espresso/internal/layout"
	"espresso/internal/pindex"
)

// Ctx is a per-goroutine operation handle over the whole set: one lazily
// created pindex context per shard, each with its own PLAB allocator and
// SATB buffer on that shard's heap. Not safe for concurrent use; give
// each goroutine its own and Release it when done.
//
// Every operation is one safepoint interval on the owning shard (a read
// lock on that shard's world), so a shard collection waits for in-flight
// operations on *its* shard only and never touches a sibling's. The
// interval covers the whole operation — for Put, the value-box
// allocation, its persist, and the index publication — so the shard's
// compactor can never move the box between those steps. Operations must
// not nest (no Ctx or Set calls from inside a Scan callback): the
// second pin can deadlock behind a waiting collector pause.
//
// On a degraded set, operations routed to a quarantined shard fail
// with an error matching ErrShardQuarantined (Put, PutRef, Lookup,
// Remove) or report absence (Get, GetRef, Delete — their signatures
// cannot carry the distinction; use the erroring variants when it
// matters). A shard that reopens behind a ctx is picked up
// transparently: the ctx notices the new instance and re-attaches.
type Ctx struct {
	set      *Set
	subs     []*pindex.Ctx
	subShard []*Shard // the Shard instance each sub was created against
	boxLines []int    // value-box cache lines flushed, per shard
}

// NewCtx attaches a per-goroutine operation handle.
func (s *Set) NewCtx() *Ctx {
	return &Ctx{
		set:      s,
		subs:     make([]*pindex.Ctx, len(s.shards)),
		subShard: make([]*Shard, len(s.shards)),
		boxLines: make([]int, len(s.shards)),
	}
}

// acquire pins shard i (read-locking its world) and returns it with the
// ctx's handle for it, re-attaching if the shard was reopened since the
// handle was created. Fails without pinning anything when the shard is
// quarantined; on success the caller must sh.world.RUnlock().
func (c *Ctx) acquire(i int) (*Shard, *pindex.Ctx, error) {
	sh := c.set.shard(i)
	if sh == nil {
		return nil, nil, &QuarantinedError{Shard: i, Cause: c.set.QuarantineCause(i)}
	}
	sh.world.RLock()
	if c.subShard[i] != sh {
		// First touch, or the shard was rebuilt (quarantine + reopen)
		// since this ctx last saw it. The old sub's heap is gone — drop
		// the handle without Release (releasing would write PLAB metadata
		// through the dead instance onto the live device).
		c.subs[i] = sh.ix.NewCtx()
		c.subShard[i] = sh
	}
	return sh, c.subs[i], nil
}

// Put durably maps key → val: the value is boxed on the owning shard's
// mutator-local PLAB, persisted, and published through that shard's
// index — durable-linearizable like pindex.Put, per shard.
func (c *Ctx) Put(key, val int64) error {
	i := c.set.mani.ShardOf(key)
	sh, sub, err := c.acquire(i)
	if err != nil {
		return err
	}
	defer sh.world.RUnlock()
	box, err := sub.Allocator().Alloc(sh.boxK, 0)
	if err != nil {
		return err
	}
	h := sh.heap
	h.SetWord(box, layout.FieldOff(0), uint64(val))
	n := sh.boxK.SizeOf(0)
	off := h.OffOf(box)
	c.boxLines[i] += (off+n-1)/layout.LineSize - off/layout.LineSize + 1
	h.FlushRange(box, 0, n)
	return sub.Put(key, box)
}

// Get looks key up on its owning shard; the answer is durable before it
// is returned. A quarantined shard reads as absent — use Lookup to tell
// "not present" from "shard unavailable".
func (c *Ctx) Get(key int64) (int64, bool) {
	v, ok, _ := c.Lookup(key)
	return v, ok
}

// Lookup is Get with the quarantine made visible: the error matches
// ErrShardQuarantined when the owning shard is fenced off.
func (c *Ctx) Lookup(key int64) (int64, bool, error) {
	i := c.set.mani.ShardOf(key)
	sh, sub, err := c.acquire(i)
	if err != nil {
		return 0, false, err
	}
	defer sh.world.RUnlock()
	box, ok := sub.Get(key)
	if !ok || box == layout.NullRef {
		return 0, false, nil
	}
	return int64(sh.heap.GetWord(box, layout.FieldOff(0))), true, nil
}

// Delete durably removes key from its owning shard, reporting whether it
// was present. A quarantined shard reports false — use Remove to tell
// the cases apart.
func (c *Ctx) Delete(key int64) bool {
	ok, _ := c.Remove(key)
	return ok
}

// Remove is Delete with the quarantine made visible: the error matches
// ErrShardQuarantined when the owning shard is fenced off.
func (c *Ctx) Remove(key int64) (bool, error) {
	i := c.set.mani.ShardOf(key)
	sh, sub, err := c.acquire(i)
	if err != nil {
		return false, err
	}
	defer sh.world.RUnlock()
	return sub.Delete(key), nil
}

// PutRef durably maps key → an object reference. The referent must live
// in the owning shard's heap (pindex rejects anything else): shards
// never hold cross-shard references, which is what keeps their recovery
// and GC independent. Use ShardOf + Shard(i).Heap() to allocate in the
// right shard, inside a Do interval.
func (c *Ctx) PutRef(key int64, val layout.Ref) error {
	i := c.set.mani.ShardOf(key)
	sh, sub, err := c.acquire(i)
	if err != nil {
		return err
	}
	defer sh.world.RUnlock()
	return sub.Put(key, val)
}

// GetRef looks up the raw reference mapped to key. A quarantined shard
// reads as absent.
func (c *Ctx) GetRef(key int64) (layout.Ref, bool) {
	i := c.set.mani.ShardOf(key)
	sh, sub, err := c.acquire(i)
	if err != nil {
		return layout.NullRef, false
	}
	defer sh.world.RUnlock()
	return sub.Get(key)
}

// Do runs fn pinned on key's owning shard (no collection of that shard
// can start), passing the shard index. References fn obtains are stable
// for fn's duration only. fn must not call other Ctx or Set operations.
// Returns without running fn when the owning shard is quarantined; the
// error matches ErrShardQuarantined.
func (c *Ctx) Do(key int64, fn func(shard int)) error {
	i := c.set.mani.ShardOf(key)
	sh := c.set.shard(i)
	if sh == nil {
		return &QuarantinedError{Shard: i, Cause: c.set.QuarantineCause(i)}
	}
	sh.world.RLock()
	defer sh.world.RUnlock()
	fn(i)
	return nil
}

// Scan walks every entry of every shard until fn returns false (weakly
// consistent per shard, shards in range order). It pins one shard at a
// time, so long scans block at most one shard's collector. Quarantined
// shards are skipped — their entries are unreachable, not invented.
func (c *Ctx) Scan(fn func(key, val int64) bool) {
	for i := range c.set.shards {
		sh, sub, err := c.acquire(i)
		if err != nil {
			continue
		}
		more := true
		sub.Scan(func(key int64, box layout.Ref) bool {
			v := int64(0)
			if box != layout.NullRef {
				v = int64(sh.heap.GetWord(box, layout.FieldOff(0)))
			}
			more = fn(key, v)
			return more
		})
		sh.world.RUnlock()
		if !more {
			return
		}
	}
}

// ShardFlushedLines reports the cache lines this ctx flushed against
// shard i — its index publications, help flushes, PLAB persists, and
// value-box persists. The shardedkv experiment's modeled device critical
// path is the slowest (ctx, shard) chain: chains flush disjoint lines on
// disjoint devices, so their media time overlaps.
func (c *Ctx) ShardFlushedLines(i int) int {
	lines := c.boxLines[i]
	if sub := c.subs[i]; sub != nil {
		lines += sub.Stats().FlushedLines + sub.AllocStats().FlushedLines
	}
	return lines
}

// Release retires every shard handle the ctx created: PLAB headroom
// returns to each shard's dispenser and pending barrier records hand off
// to the shard's shared buffer. A handle whose shard instance was
// replaced (quarantine + reopen) is dropped instead — its PLAB and
// buffers belong to the dead instance.
func (c *Ctx) Release() {
	for i, sub := range c.subs {
		if sub == nil {
			continue
		}
		sh := c.set.shard(i)
		if sh == nil || sh != c.subShard[i] {
			c.subs[i], c.subShard[i] = nil, nil
			continue
		}
		sh.world.RLock()
		sub.Release()
		sh.world.RUnlock()
		c.subs[i], c.subShard[i] = nil, nil
	}
}
