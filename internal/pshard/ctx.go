package pshard

import (
	"espresso/internal/layout"
	"espresso/internal/pindex"
)

// Ctx is a per-goroutine operation handle over the whole set: one lazily
// created pindex context per shard, each with its own PLAB allocator and
// SATB buffer on that shard's heap. Not safe for concurrent use; give
// each goroutine its own and Release it when done.
//
// Every operation is one safepoint interval on the owning shard (a read
// lock on that shard's world), so a shard collection waits for in-flight
// operations on *its* shard only and never touches a sibling's. The
// interval covers the whole operation — for Put, the value-box
// allocation, its persist, and the index publication — so the shard's
// compactor can never move the box between those steps. Operations must
// not nest (no Ctx or Set calls from inside a Scan callback): the
// second pin can deadlock behind a waiting collector pause.
type Ctx struct {
	set      *Set
	subs     []*pindex.Ctx
	boxLines []int // value-box cache lines flushed, per shard
}

// NewCtx attaches a per-goroutine operation handle.
func (s *Set) NewCtx() *Ctx {
	return &Ctx{
		set:      s,
		subs:     make([]*pindex.Ctx, len(s.shards)),
		boxLines: make([]int, len(s.shards)),
	}
}

// sub returns (creating on first use) the ctx's handle for shard i.
func (c *Ctx) sub(i int) *pindex.Ctx {
	if c.subs[i] == nil {
		c.subs[i] = c.set.shards[i].ix.NewCtx()
	}
	return c.subs[i]
}

// Put durably maps key → val: the value is boxed on the owning shard's
// mutator-local PLAB, persisted, and published through that shard's
// index — durable-linearizable like pindex.Put, per shard.
func (c *Ctx) Put(key, val int64) error {
	i := c.set.mani.ShardOf(key)
	sh := c.set.shards[i]
	sh.world.RLock()
	defer sh.world.RUnlock()
	sub := c.sub(i)
	box, err := sub.Allocator().Alloc(sh.boxK, 0)
	if err != nil {
		return err
	}
	h := sh.heap
	h.SetWord(box, layout.FieldOff(0), uint64(val))
	n := sh.boxK.SizeOf(0)
	off := h.OffOf(box)
	c.boxLines[i] += (off+n-1)/layout.LineSize - off/layout.LineSize + 1
	h.FlushRange(box, 0, n)
	return sub.Put(key, box)
}

// Get looks key up on its owning shard; the answer is durable before it
// is returned.
func (c *Ctx) Get(key int64) (int64, bool) {
	i := c.set.mani.ShardOf(key)
	sh := c.set.shards[i]
	sh.world.RLock()
	defer sh.world.RUnlock()
	box, ok := c.sub(i).Get(key)
	if !ok || box == layout.NullRef {
		return 0, false
	}
	return int64(sh.heap.GetWord(box, layout.FieldOff(0))), true
}

// Delete durably removes key from its owning shard, reporting whether it
// was present.
func (c *Ctx) Delete(key int64) bool {
	i := c.set.mani.ShardOf(key)
	sh := c.set.shards[i]
	sh.world.RLock()
	defer sh.world.RUnlock()
	return c.sub(i).Delete(key)
}

// PutRef durably maps key → an object reference. The referent must live
// in the owning shard's heap (pindex rejects anything else): shards
// never hold cross-shard references, which is what keeps their recovery
// and GC independent. Use ShardOf + Shard(i).Heap() to allocate in the
// right shard, inside a Do interval.
func (c *Ctx) PutRef(key int64, val layout.Ref) error {
	i := c.set.mani.ShardOf(key)
	sh := c.set.shards[i]
	sh.world.RLock()
	defer sh.world.RUnlock()
	return c.sub(i).Put(key, val)
}

// GetRef looks up the raw reference mapped to key.
func (c *Ctx) GetRef(key int64) (layout.Ref, bool) {
	i := c.set.mani.ShardOf(key)
	sh := c.set.shards[i]
	sh.world.RLock()
	defer sh.world.RUnlock()
	return c.sub(i).Get(key)
}

// Do runs fn pinned on key's owning shard (no collection of that shard
// can start), passing the shard index. References fn obtains are stable
// for fn's duration only. fn must not call other Ctx or Set operations.
func (c *Ctx) Do(key int64, fn func(shard int)) {
	i := c.set.mani.ShardOf(key)
	sh := c.set.shards[i]
	sh.world.RLock()
	defer sh.world.RUnlock()
	fn(i)
}

// Scan walks every entry of every shard until fn returns false (weakly
// consistent per shard, shards in range order). It pins one shard at a
// time, so long scans block at most one shard's collector.
func (c *Ctx) Scan(fn func(key, val int64) bool) {
	for i, sh := range c.set.shards {
		more := true
		sh.world.RLock()
		c.sub(i).Scan(func(key int64, box layout.Ref) bool {
			v := int64(0)
			if box != layout.NullRef {
				v = int64(sh.heap.GetWord(box, layout.FieldOff(0)))
			}
			more = fn(key, v)
			return more
		})
		sh.world.RUnlock()
		if !more {
			return
		}
	}
}

// ShardFlushedLines reports the cache lines this ctx flushed against
// shard i — its index publications, help flushes, PLAB persists, and
// value-box persists. The shardedkv experiment's modeled device critical
// path is the slowest (ctx, shard) chain: chains flush disjoint lines on
// disjoint devices, so their media time overlaps.
func (c *Ctx) ShardFlushedLines(i int) int {
	lines := c.boxLines[i]
	if sub := c.subs[i]; sub != nil {
		lines += sub.Stats().FlushedLines + sub.AllocStats().FlushedLines
	}
	return lines
}

// Release retires every shard handle the ctx created: PLAB headroom
// returns to each shard's dispenser and pending barrier records hand off
// to the shard's shared buffer.
func (c *Ctx) Release() {
	for i, sub := range c.subs {
		if sub == nil {
			continue
		}
		sh := c.set.shards[i]
		sh.world.RLock()
		sub.Release()
		sh.world.RUnlock()
		c.subs[i] = nil
	}
}
