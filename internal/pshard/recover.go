package pshard

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"strconv"
	"sync"

	"espresso/internal/nvm"
	"espresso/internal/pheap"
	"espresso/internal/pindex"
)

// RecoveryStats reports what one shard's open-time recovery did. The
// device-traffic delta is the deterministic input to the shardedkv
// experiment's modeled restart-time series.
type RecoveryStats struct {
	// Created: the shard image was missing from the store and the shard
	// was recreated empty (legal only as the tail of an interrupted set
	// creation — see the manifest crash rule).
	Created bool
	// GCRecovered: the image carried an interrupted collection that
	// pgc recovery finished (or a stale concurrent-mark phase word it
	// cleared).
	GCRecovered bool
	// WallNS is this shard's recovery wall time. Shards recover in
	// parallel, so the set's restart time tracks the slowest shard, not
	// the sum of these.
	WallNS int64
	// Dev is the shard device's traffic during recovery (heap load,
	// interrupted-collection replay, index repair walk).
	Dev nvm.Stats
	// Index is the pindex recovery pass's repair report.
	Index pindex.RecoverStats
	// Salvage is the heap-level salvage report (nil outside degraded
	// mode; empty when a degraded open found nothing to amputate).
	Salvage *pheap.SalvageReport
}

// fanOut runs fn(i) for each of n shards with at most workers running
// concurrently, joining every shard's error. A panicking shard (a
// corrupt image tripping an invariant) is converted into that shard's
// error instead of killing the process — the other workers finish, and
// the caller sees the joined failure.
func fanOut(n, workers int, fn func(i int) error) error {
	if workers < 1 || workers > n {
		workers = n
	}
	sem := make(chan struct{}, workers)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			// The shard label makes CPU profiles of a slow restart say
			// which shard's recovery burned the time.
			pprof.Do(context.Background(), pprof.Labels("shard", strconv.Itoa(i)), func(context.Context) {
				errs[i] = protect(fn, i)
			})
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

func protect(fn func(int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("pshard: shard %d: panic: %v", i, r)
		}
	}()
	return fn(i)
}
