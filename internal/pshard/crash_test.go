package pshard

import (
	"testing"

	"espresso/internal/klass"
	"espresso/internal/nvm"
	"espresso/internal/nvm/faultdev"
	"espresso/internal/pheap"
)

// loadForCheck loads a heap image for direct inspection.
func loadForCheck(dev *nvm.Device) (*pheap.Heap, error) {
	return pheap.Load(dev, klass.NewRegistry())
}

// buildCrashedScenario constructs the canonical recovery workload: a
// 4-shard set with a committed model, with shard 1 crashed mid-collection
// (its image carries a persisted gcActive, so reopening must run the pgc
// recovery pass on it). Returns the power-loss images, the committed
// model, and the crashed shard's index.
func buildCrashedScenario(t *testing.T) (map[string][]byte, map[int64]int64, int) {
	t.Helper()
	const crashShard = 1
	store := NewMemStore()
	set, err := OpenSet(store, "kv", testOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	model := make(map[int64]int64)
	c := set.NewCtx()
	for k := int64(0); k < 800; k++ {
		if err := c.Put(k, k*11); err != nil {
			t.Fatal(err)
		}
		model[k] = k * 11
	}
	// Garbage on every shard so collections move things.
	for k := int64(0); k < 400; k++ {
		if err := c.Put(k, k*13); err != nil {
			t.Fatal(err)
		}
		model[k] = k * 13
	}
	c.Release()

	// Crash shard crashShard mid-collection: wait until the persisted
	// gcActive flag is up, then let a handful more flushes land and cut
	// power. The crash image is then guaranteed to need pgc recovery.
	sh := set.Shard(crashShard)
	dev := sh.Heap().Device()
	faultdev.CrashWhen(dev, 8, sh.Heap().GCActive)
	crashed, err := faultdev.Run(dev, func() error {
		_, err := set.GCShard(crashShard)
		return err
	})
	if err != nil {
		t.Fatalf("GCShard: %v", err)
	}
	if !crashed {
		t.Fatal("collection completed without reaching the injected crash point")
	}

	imgs := images(t, store, "kv", 4)
	// Sanity: the scenario really does leave an interrupted collection.
	re := nvm.FromImage(append([]byte(nil), imgs[ShardHeapName("kv", crashShard)]...),
		nvm.Config{Mode: nvm.Tracked})
	h, err := loadForCheck(re)
	if err != nil {
		t.Fatalf("loading crashed shard image: %v", err)
	}
	if !h.GCActive() {
		t.Fatal("crashed shard image does not carry gcActive; scenario is inert")
	}
	return imgs, model, crashShard
}

// TestCrashDuringParallelRecovery injects a power cut while the parallel
// recovery fan-out is mid-flight — the crashed shard is replaying an
// interrupted collection while its siblings recover cleanly — and checks
// that a second OpenSet lands on exactly the committed mappings, with no
// double-applied replay and the manifest generation all-old after the
// failed open, all-new after the successful one.
func TestCrashDuringParallelRecovery(t *testing.T) {
	imgs, model, crashShard := buildCrashedScenario(t)
	sawCrash := false
	sweepErr := faultdev.SweepDoubling(func(k uint64) (bool, error) {
		store := storeFrom(t, imgs)
		dev, err := store.Open(ShardHeapName("kv", crashShard))
		if err != nil {
			t.Fatal(err)
		}
		faultdev.CrashIn(dev, k)
		// The injected panic fires inside a recovery worker; pshard's
		// containment converts it to a per-shard error that OpenSet
		// returns, and Run recognizes it (IsCrashError) as the crash.
		crashed, err := faultdev.Run(dev, func() error {
			_, err := OpenSet(store, "kv", Options{Mode: nvm.Tracked, RecoveryWorkers: 2})
			return err
		})
		if err != nil {
			t.Fatalf("k=%d: unexpected OpenSet error: %v", k, err)
		}
		if !crashed {
			// Recovery finished under k flushes: the sweep has covered
			// every boundary.
			return false, nil
		}
		sawCrash = true

		// All-old: the failed open must not have bumped the generation.
		mdev, err := store.Open(ManifestName("kv"))
		if err != nil {
			t.Fatal(err)
		}
		mani, err := ReadManifest(mdev)
		if err != nil {
			t.Fatalf("k=%d: manifest unreadable after crashed recovery: %v", k, err)
		}
		if mani.Generation != 1 {
			t.Fatalf("k=%d: generation %d after failed open, want 1 (all-old)", k, mani.Generation)
		}

		// Power-cut the half-recovered state and open again: every
		// repair is idempotent, so the committed set must come back
		// exactly.
		store2 := storeFrom(t, images(t, store, "kv", 4))
		set, err := OpenSet(store2, "kv", Options{Mode: nvm.Tracked})
		if err != nil {
			t.Fatalf("k=%d: second OpenSet: %v", k, err)
		}
		if g := set.Manifest().Generation; g != 2 {
			t.Fatalf("k=%d: generation %d after successful open, want 2 (all-new)", k, g)
		}
		verifySet(t, "second open", set, model)
		return true, nil
	})
	if sweepErr != nil {
		t.Fatal(sweepErr)
	}
	if !sawCrash {
		t.Fatal("no injected crash ever fired; recovery issued no flushes")
	}
}
