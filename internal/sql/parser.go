package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// Statement is a parsed SQL statement.
type Statement interface{ stmt() }

// ColumnType enumerates the supported column types.
type ColumnType int

const (
	ColBigint ColumnType = iota
	ColVarchar
	ColDouble
)

func (t ColumnType) String() string {
	switch t {
	case ColBigint:
		return "BIGINT"
	case ColVarchar:
		return "VARCHAR"
	case ColDouble:
		return "DOUBLE"
	}
	return "?"
}

// ColumnDef is one column of a CREATE TABLE.
type ColumnDef struct {
	Name       string
	Type       ColumnType
	PrimaryKey bool
}

// CreateTable is CREATE TABLE name (cols...).
type CreateTable struct {
	Table   string
	Columns []ColumnDef
}

// Insert is INSERT INTO t (cols) VALUES (exprs).
type Insert struct {
	Table   string
	Columns []string
	Values  []Expr
}

// Select is SELECT cols|* FROM t [WHERE col = expr].
type Select struct {
	Table   string
	Columns []string // nil = *
	Where   *Cond
}

// Update is UPDATE t SET col=expr,... WHERE col = expr.
type Update struct {
	Table string
	Set   []Assign
	Where *Cond
}

// Delete is DELETE FROM t [WHERE col = expr].
type Delete struct {
	Table string
	Where *Cond
}

// Assign is col = expr.
type Assign struct {
	Column string
	Value  Expr
}

// Cond is the equality predicate col = expr.
type Cond struct {
	Column string
	Value  Expr
}

func (*CreateTable) stmt() {}
func (*Insert) stmt()      {}
func (*Select) stmt()      {}
func (*Update) stmt()      {}
func (*Delete) stmt()      {}

// Expr is a literal or a positional parameter.
type Expr struct {
	Param  bool // '?'
	IsInt  bool
	IsStr  bool
	IsReal bool
	Int    int64
	Str    string
	Real   float64
}

type parser struct {
	toks []token
	i    int
}

// Parse parses one statement.
func Parse(src string) (Statement, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, fmt.Errorf("%w (in %q)", err, src)
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("sql: trailing tokens after statement (in %q)", src)
	}
	return st, nil
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) advance() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) expectKeyword(kw string) error {
	t := p.advance()
	if t.kind != tokIdent || !strings.EqualFold(t.text, kw) {
		return fmt.Errorf("sql: expected %s, found %q", kw, t.text)
	}
	return nil
}

func (p *parser) expectPunct(s string) error {
	t := p.advance()
	if t.kind != tokPunct || t.text != s {
		return fmt.Errorf("sql: expected %q, found %q", s, t.text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.advance()
	if t.kind != tokIdent {
		return "", fmt.Errorf("sql: expected identifier, found %q", t.text)
	}
	return t.text, nil
}

func (p *parser) keywordIs(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) statement() (Statement, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return nil, fmt.Errorf("sql: expected statement keyword, found %q", t.text)
	}
	switch strings.ToUpper(t.text) {
	case "CREATE":
		return p.createTable()
	case "INSERT":
		return p.insert()
	case "SELECT":
		return p.selectStmt()
	case "UPDATE":
		return p.update()
	case "DELETE":
		return p.deleteStmt()
	default:
		return nil, fmt.Errorf("sql: unsupported statement %q", t.text)
	}
}

func (p *parser) createTable() (Statement, error) {
	p.advance() // CREATE
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var cols []ColumnDef
	for {
		cname, err := p.ident()
		if err != nil {
			return nil, err
		}
		tname, err := p.ident()
		if err != nil {
			return nil, err
		}
		var ct ColumnType
		switch strings.ToUpper(tname) {
		case "BIGINT", "INT", "INTEGER":
			ct = ColBigint
		case "VARCHAR", "TEXT":
			ct = ColVarchar
		case "DOUBLE", "FLOAT", "REAL":
			ct = ColDouble
		default:
			return nil, fmt.Errorf("sql: unsupported column type %q", tname)
		}
		col := ColumnDef{Name: cname, Type: ct}
		if p.keywordIs("PRIMARY") {
			p.advance()
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			col.PrimaryKey = true
		}
		cols = append(cols, col)
		t := p.advance()
		if t.kind == tokPunct && t.text == "," {
			continue
		}
		if t.kind == tokPunct && t.text == ")" {
			break
		}
		return nil, fmt.Errorf("sql: expected , or ) in column list, found %q", t.text)
	}
	return &CreateTable{Table: name, Columns: cols}, nil
}

func (p *parser) expr() (Expr, error) {
	t := p.advance()
	switch {
	case t.kind == tokPunct && t.text == "?":
		return Expr{Param: true}, nil
	case t.kind == tokNumber:
		if strings.ContainsRune(t.text, '.') {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return Expr{}, fmt.Errorf("sql: bad number %q", t.text)
			}
			return Expr{IsReal: true, Real: f}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return Expr{}, fmt.Errorf("sql: bad number %q", t.text)
		}
		return Expr{IsInt: true, Int: n}, nil
	case t.kind == tokString:
		return Expr{IsStr: true, Str: t.text}, nil
	case t.kind == tokIdent && strings.EqualFold(t.text, "NULL"):
		return Expr{}, nil
	default:
		return Expr{}, fmt.Errorf("sql: expected value, found %q", t.text)
	}
}

func (p *parser) insert() (Statement, error) {
	p.advance() // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var cols []string
	for {
		c, err := p.ident()
		if err != nil {
			return nil, err
		}
		cols = append(cols, c)
		t := p.advance()
		if t.text == ")" {
			break
		}
		if t.text != "," {
			return nil, fmt.Errorf("sql: expected , or ) in insert columns")
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var vals []Expr
	for {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		vals = append(vals, e)
		t := p.advance()
		if t.text == ")" {
			break
		}
		if t.text != "," {
			return nil, fmt.Errorf("sql: expected , or ) in insert values")
		}
	}
	if len(vals) != len(cols) {
		return nil, fmt.Errorf("sql: %d columns but %d values", len(cols), len(vals))
	}
	return &Insert{Table: table, Columns: cols, Values: vals}, nil
}

func (p *parser) whereOpt() (*Cond, error) {
	if !p.keywordIs("WHERE") {
		return nil, nil
	}
	p.advance()
	col, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("="); err != nil {
		return nil, err
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &Cond{Column: col, Value: e}, nil
}

func (p *parser) selectStmt() (Statement, error) {
	p.advance() // SELECT
	var cols []string
	if t := p.peek(); t.kind == tokPunct && t.text == "*" {
		p.advance()
	} else {
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			cols = append(cols, c)
			if t := p.peek(); t.kind == tokPunct && t.text == "," {
				p.advance()
				continue
			}
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	where, err := p.whereOpt()
	if err != nil {
		return nil, err
	}
	return &Select{Table: table, Columns: cols, Where: where}, nil
}

func (p *parser) update() (Statement, error) {
	p.advance() // UPDATE
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	var set []Assign
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		set = append(set, Assign{Column: col, Value: e})
		if t := p.peek(); t.kind == tokPunct && t.text == "," {
			p.advance()
			continue
		}
		break
	}
	where, err := p.whereOpt()
	if err != nil {
		return nil, err
	}
	return &Update{Table: table, Set: set, Where: where}, nil
}

func (p *parser) deleteStmt() (Statement, error) {
	p.advance() // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	where, err := p.whereOpt()
	if err != nil {
		return nil, err
	}
	return &Delete{Table: table, Where: where}, nil
}

// Quote escapes a string literal for embedding in SQL text (the JPA
// provider builds statements as strings, like DataNucleus does).
func Quote(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}
