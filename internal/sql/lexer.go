// Package sql implements the SQL subset a JPA provider emits against an
// embedded database: CREATE TABLE, INSERT, SELECT, UPDATE, DELETE with
// equality predicates and positional parameters. The JPA-versus-PJO
// comparison (paper Figures 4, 16, 17) hinges on this layer doing real
// work — the "transformation" cost is string building plus lexing,
// parsing, and planning, all of which happen here for real.
package sql

import (
	"fmt"
	"strings"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // ( ) , * = ?
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

type lexer struct {
	src string
	pos int
}

func (l *lexer) errf(pos int, format string, args ...any) error {
	return fmt.Errorf("sql: at %d: %s", pos, fmt.Sprintf(format, args...))
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9' || c == '.' || c == '$'
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && (l.src[l.pos] == ' ' || l.src[l.pos] == '\t' || l.src[l.pos] == '\n' || l.src[l.pos] == '\r') {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], pos: start}, nil
	case c >= '0' && c <= '9' || c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
		l.pos++
		for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.') {
			l.pos++
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
	case c == '\'':
		l.pos++
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errf(start, "unterminated string literal")
			}
			if l.src[l.pos] == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					sb.WriteByte('\'') // doubled quote escape
					l.pos += 2
					continue
				}
				l.pos++
				return token{kind: tokString, text: sb.String(), pos: start}, nil
			}
			sb.WriteByte(l.src[l.pos])
			l.pos++
		}
	case strings.IndexByte("(),*=?", c) >= 0:
		l.pos++
		return token{kind: tokPunct, text: string(c), pos: start}, nil
	default:
		return token{}, l.errf(start, "unexpected character %q", c)
	}
}

// lexAll tokenizes the whole statement.
func lexAll(src string) ([]token, error) {
	l := &lexer{src: src}
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
