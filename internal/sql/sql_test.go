package sql

import "testing"

func TestParseCreateTable(t *testing.T) {
	st, err := Parse("CREATE TABLE person (id BIGINT PRIMARY KEY, name VARCHAR, score DOUBLE)")
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(*CreateTable)
	if ct.Table != "person" || len(ct.Columns) != 3 {
		t.Fatalf("parsed %+v", ct)
	}
	if !ct.Columns[0].PrimaryKey || ct.Columns[0].Type != ColBigint {
		t.Fatalf("pk column %+v", ct.Columns[0])
	}
	if ct.Columns[1].Type != ColVarchar || ct.Columns[2].Type != ColDouble {
		t.Fatalf("column types %+v", ct.Columns)
	}
}

func TestParseInsertWithLiteralsAndParams(t *testing.T) {
	st, err := Parse("INSERT INTO t (id, name, score) VALUES (42, 'O''Brien', ?)")
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*Insert)
	if ins.Values[0].Int != 42 || ins.Values[1].Str != "O'Brien" || !ins.Values[2].Param {
		t.Fatalf("values %+v", ins.Values)
	}
}

func TestParseSelect(t *testing.T) {
	st, err := Parse("SELECT name, score FROM t WHERE id = 7")
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(*Select)
	if len(sel.Columns) != 2 || sel.Where == nil || sel.Where.Value.Int != 7 {
		t.Fatalf("select %+v", sel)
	}
	st, err = Parse("SELECT * FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if sel := st.(*Select); sel.Columns != nil || sel.Where != nil {
		t.Fatalf("select star %+v", sel)
	}
}

func TestParseUpdateDelete(t *testing.T) {
	st, err := Parse("UPDATE t SET a = 1, b = 'x' WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}
	up := st.(*Update)
	if len(up.Set) != 2 || !up.Where.Value.Param {
		t.Fatalf("update %+v", up)
	}
	st, err = Parse("DELETE FROM t WHERE id = -3")
	if err != nil {
		t.Fatal(err)
	}
	if del := st.(*Delete); del.Where.Value.Int != -3 {
		t.Fatalf("delete %+v", del)
	}
}

func TestParseFloatAndNull(t *testing.T) {
	st, err := Parse("INSERT INTO t (a, b) VALUES (2.5, NULL)")
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*Insert)
	if !ins.Values[0].IsReal || ins.Values[0].Real != 2.5 {
		t.Fatalf("float %+v", ins.Values[0])
	}
	if ins.Values[1].IsInt || ins.Values[1].IsStr || ins.Values[1].IsReal || ins.Values[1].Param {
		t.Fatalf("null %+v", ins.Values[1])
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"DROP TABLE t",
		"SELECT FROM t",
		"INSERT INTO t (a) VALUES (1, 2)",
		"CREATE TABLE t (x BLOB)",
		"UPDATE t SET",
		"SELECT * FROM t WHERE a = 'unterminated",
		"SELECT * FROM t extra garbage",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

func TestQuote(t *testing.T) {
	if Quote("a'b") != "'a''b'" {
		t.Fatalf("Quote = %q", Quote("a'b"))
	}
	st, err := Parse("SELECT * FROM t WHERE name = " + Quote("O'Brien"))
	if err != nil {
		t.Fatal(err)
	}
	if st.(*Select).Where.Value.Str != "O'Brien" {
		t.Fatal("quote round trip failed")
	}
}
