package espresso

import (
	"path/filepath"
	"sync"
	"testing"
)

func TestShardedPMapBasics(t *testing.T) {
	rt, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := rt.OpenSharded("sessions", ShardedPMapOptions{Shards: 4, ShardDataSize: 2 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumShards() != 4 {
		t.Fatalf("NumShards = %d", m.NumShards())
	}
	for i := int64(0); i < 300; i++ {
		if err := m.Put(i, i*2); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 300; i++ {
		if v, ok := m.Get(i); !ok || v != i*2 {
			t.Fatalf("key %d = (%d, %v)", i, v, ok)
		}
		if s := m.ShardOf(i); s < 0 || s >= 4 {
			t.Fatalf("key %d routed to %d", i, s)
		}
	}
	if !m.Delete(7) {
		t.Fatal("delete 7 missed")
	}
	if m.Len() != 299 {
		t.Fatalf("Len = %d", m.Len())
	}
	seen := 0
	m.Scan(func(int64, int64) bool { seen++; return true })
	if seen != 299 {
		t.Fatalf("scan saw %d", seen)
	}
	if _, err := m.GC(); err != nil {
		t.Fatalf("GC: %v", err)
	}
	if v, ok := m.Get(12); !ok || v != 24 {
		t.Fatalf("post-GC get: (%d, %v)", v, ok)
	}
}

func TestShardedPMapReopenFromDir(t *testing.T) {
	dir := t.TempDir()
	rt, err := Open(Options{HeapDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	m, err := rt.OpenSharded("kv", ShardedPMapOptions{Shards: 2, ShardDataSize: 2 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		if err := m.Put(i, i+5); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Sync(); err != nil {
		t.Fatal(err)
	}
	if files, _ := filepath.Glob(filepath.Join(dir, "kv-*.pjh")); len(files) != 3 {
		t.Fatalf("expected manifest + 2 shard images on disk, found %v", files)
	}

	// A second runtime (a new process, as far as the store is concerned)
	// reopens the set from the files; the shard count comes from the
	// manifest, not from the options.
	rt2, err := Open(Options{HeapDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := rt2.OpenSharded("kv", ShardedPMapOptions{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	if m2.NumShards() != 2 {
		t.Fatalf("reopened with %d shards, want 2 from manifest", m2.NumShards())
	}
	for i := int64(0); i < 100; i++ {
		if v, ok := m2.Get(i); !ok || v != i+5 {
			t.Fatalf("key %d = (%d, %v) after reopen", i, v, ok)
		}
	}
}

// TestShardedPMapCtxPoolBounded checks the idle-context cap: after a
// burst of concurrency wider than maxIdleCtxs drains, the pool must hold
// at most maxIdleCtxs contexts — the rest were released, unpinning their
// PLAB regions, instead of idling forever (N shards would otherwise pin
// N regions per leaked ctx).
func TestShardedPMapCtxPoolBounded(t *testing.T) {
	rt, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := rt.OpenSharded("burst", ShardedPMapOptions{Shards: 2, ShardDataSize: 2 << 20})
	if err != nil {
		t.Fatal(err)
	}
	const burst = maxIdleCtxs + 16
	start := make(chan struct{})
	var ready, done sync.WaitGroup
	for g := 0; g < burst; g++ {
		ready.Add(1)
		done.Add(1)
		go func(g int) {
			defer done.Done()
			ready.Done()
			<-start
			for i := 0; i < 20; i++ {
				if err := m.Put(int64(g*1000+i), int64(i)); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(g)
	}
	ready.Wait()
	close(start)
	done.Wait()
	m.mu.Lock()
	idle := len(m.ctxs)
	m.mu.Unlock()
	if idle > maxIdleCtxs {
		t.Fatalf("idle ctx pool holds %d, cap is %d", idle, maxIdleCtxs)
	}
}

// TestPMapCtxPoolBounded is the same property for the unsharded map.
func TestPMapCtxPoolBounded(t *testing.T) {
	rt, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 48 bursting ctxs each pin a PLAB region; the v4 format's flight-
	// recorder ring carve-out shaved the old 8MB size's last margin.
	if err := rt.CreateHeap("kv", 16<<20); err != nil {
		t.Fatal(err)
	}
	m, err := rt.OpenPMap("kv", "users", PMapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const burst = maxIdleCtxs + 16
	start := make(chan struct{})
	var ready, done sync.WaitGroup
	for g := 0; g < burst; g++ {
		ready.Add(1)
		done.Add(1)
		go func(g int) {
			defer done.Done()
			ready.Done()
			<-start
			for i := 0; i < 20; i++ {
				if err := m.Put(int64(g*1000+i), 0); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(g)
	}
	ready.Wait()
	close(start)
	done.Wait()
	m.mu.Lock()
	idle := len(m.ctxs)
	m.mu.Unlock()
	if idle > maxIdleCtxs {
		t.Fatalf("idle ctx pool holds %d, cap is %d", idle, maxIdleCtxs)
	}
}
