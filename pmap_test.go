package espresso

import (
	"fmt"
	"sync"
	"testing"
)

func TestPMapBasics(t *testing.T) {
	rt, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.CreateHeap("kv", 8<<20); err != nil {
		t.Fatal(err)
	}
	m, err := rt.OpenPMap("kv", "users", PMapOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 200; i++ {
		name, err := rt.NewString(fmt.Sprintf("user-%d", i), true)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Put(i, name); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 200; i++ {
		v, ok := m.Get(i)
		if !ok {
			t.Fatalf("key %d missing", i)
		}
		s, err := rt.GetString(v)
		if err != nil || s != fmt.Sprintf("user-%d", i) {
			t.Fatalf("key %d: %q, %v", i, s, err)
		}
	}
	if !m.Delete(7) {
		t.Fatal("delete 7 missed")
	}
	if _, ok := m.Get(7); ok {
		t.Fatal("deleted key visible")
	}
	if m.Len() != 199 {
		t.Fatalf("Len = %d", m.Len())
	}
	seen := 0
	m.Scan(func(int64, Ref) bool { seen++; return true })
	if seen != 199 {
		t.Fatalf("scan saw %d", seen)
	}
}

// TestPMapSurvivesConcurrentGC runs mixed map traffic on several
// goroutines while concurrent collections cycle, then verifies exact
// contents — the index's safepoint pinning, SATB barrier, and tag-aware
// compaction all under load.
func TestPMapSurvivesConcurrentGC(t *testing.T) {
	rt, err := Open(Options{ConcurrentGC: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.CreateHeap("kv", 24<<20); err != nil {
		t.Fatal(err)
	}
	m, err := rt.OpenPMap("kv", "idx", PMapOptions{InitialBuckets: 8, MaxLoadFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 4
	const perG = 300
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := int64(g) << 32
			for i := int64(0); i < perG; i++ {
				k := base + i
				if err := m.Put(k, 0); err != nil {
					errs[g] = err
					return
				}
				if i%4 == 3 {
					if !m.Delete(k) {
						errs[g] = fmt.Errorf("delete %d missed", k)
						return
					}
				}
			}
		}(g)
	}
	gcDone := make(chan error, 1)
	go func() {
		for cycle := 0; cycle < 3; cycle++ {
			if _, err := rt.PersistentGCConcurrent("kv"); err != nil {
				gcDone <- err
				return
			}
		}
		gcDone <- nil
	}()
	wg.Wait()
	if err := <-gcDone; err != nil {
		t.Fatalf("concurrent GC: %v", err)
	}
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// One more cycle against the quiescent map, then verify exactly.
	if _, err := rt.PersistentGCConcurrent("kv"); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < goroutines; g++ {
		base := int64(g) << 32
		for i := int64(0); i < perG; i++ {
			_, ok := m.Get(base + i)
			if deleted := i%4 == 3; ok == deleted {
				t.Fatalf("g=%d i=%d present=%v deleted=%v", g, i, ok, deleted)
			}
		}
	}
}
