module espresso

go 1.22
