// Microbenchmarks for the resolved-accessor fast path: field access with
// and without resolved handles, bulk string round trips, and coalesced
// transitive flushes. Each reports accounted device traffic per op next
// to wall time, since device ops are what NVM hardware charges for.
package espresso_test

import (
	"strings"
	"testing"

	"espresso"
	"espresso/internal/nvm"
)

func benchRT(b *testing.B) (*espresso.Runtime, *nvm.Device) {
	b.Helper()
	rt, err := espresso.Open(espresso.Options{DefaultHeapSize: 64 << 20})
	if err != nil {
		b.Fatal(err)
	}
	if err := rt.CreateHeap("bench", 0); err != nil {
		b.Fatal(err)
	}
	h, _ := rt.Heap("bench")
	return rt, h.Device()
}

// BenchmarkFieldAccess compares the name-resolving accessors against the
// FieldRef fast path. The acceptance bar for this repo: the resolved
// variants do ≥3x fewer ns/op and ≥2x fewer device reads than the named
// ones.
func BenchmarkFieldAccess(b *testing.B) {
	rt, dev := benchRT(b)
	person := espresso.MustClass("bench/Person", nil,
		espresso.Long("id"), espresso.Long("age"), espresso.Str("name"))
	p, err := rt.PNew(person)
	if err != nil {
		b.Fatal(err)
	}
	idF := rt.MustResolveField(person, "id")

	reportReads := func(b *testing.B, s0 nvm.Stats) {
		d := dev.Stats().Sub(s0)
		b.ReportMetric(float64(d.Reads)/float64(b.N), "devreads/op")
		b.ReportMetric(float64(d.Writes)/float64(b.N), "devwrites/op")
	}

	b.Run("named-get", func(b *testing.B) {
		s0 := dev.Stats()
		for i := 0; i < b.N; i++ {
			if _, err := rt.GetLong(p, "id"); err != nil {
				b.Fatal(err)
			}
		}
		reportReads(b, s0)
	})
	b.Run("resolved-get", func(b *testing.B) {
		s0 := dev.Stats()
		for i := 0; i < b.N; i++ {
			_ = rt.GetLongFast(p, idF)
		}
		reportReads(b, s0)
	})
	b.Run("named-set", func(b *testing.B) {
		s0 := dev.Stats()
		for i := 0; i < b.N; i++ {
			if err := rt.SetLong(p, "id", int64(i)); err != nil {
				b.Fatal(err)
			}
		}
		reportReads(b, s0)
	})
	b.Run("resolved-set", func(b *testing.B) {
		s0 := dev.Stats()
		for i := 0; i < b.N; i++ {
			rt.SetLongFast(p, idF, int64(i))
		}
		reportReads(b, s0)
	})
}

// BenchmarkSetRefFast measures the reference-store write barrier: named
// vs resolved-handle stores, and resolved stores routed through a
// Mutator, whose remembered-set maintenance is an append to a
// mutator-local delta buffer (no shared lock, no shared cache line; the
// shared set learns about the stores at publication points). The
// parallel variant runs one Mutator per goroutine — the lock-free hot
// path the refstore experiment gates in CI. Every variant must cost
// exactly one device write per store.
func BenchmarkSetRefFast(b *testing.B) {
	rt, dev := benchRT(b)
	node := espresso.MustClass("bench/RefNode", nil,
		espresso.RefTo("next", "bench/RefNode"), espresso.Long("v"))
	nextF := rt.MustResolveField(node, "next")
	a, err := rt.PNew(node)
	if err != nil {
		b.Fatal(err)
	}
	target, err := rt.PNew(node)
	if err != nil {
		b.Fatal(err)
	}

	report := func(b *testing.B, s0 nvm.Stats) {
		d := dev.Stats().Sub(s0)
		b.ReportMetric(float64(d.Writes)/float64(b.N), "devwrites/op")
	}

	b.Run("named-set-ref", func(b *testing.B) {
		s0 := dev.Stats()
		for i := 0; i < b.N; i++ {
			if err := rt.SetRef(a, "next", target); err != nil {
				b.Fatal(err)
			}
		}
		report(b, s0)
	})
	b.Run("resolved-set-ref", func(b *testing.B) {
		s0 := dev.Stats()
		for i := 0; i < b.N; i++ {
			if err := rt.SetRefFast(a, nextF, target); err != nil {
				b.Fatal(err)
			}
		}
		report(b, s0)
	})
	b.Run("mutator-set-ref", func(b *testing.B) {
		m, err := rt.NewMutator()
		if err != nil {
			b.Fatal(err)
		}
		defer m.Release()
		s0 := dev.Stats()
		for i := 0; i < b.N; i++ {
			if err := m.SetRefFast(a, nextF, target); err != nil {
				b.Fatal(err)
			}
		}
		report(b, s0)
	})
	b.Run("mutator-set-ref-parallel", func(b *testing.B) {
		s0 := dev.Stats()
		b.RunParallel(func(pb *testing.PB) {
			m, err := rt.NewMutator()
			if err != nil {
				b.Error(err)
				return
			}
			defer m.Release()
			// Each goroutine stores into its own object: disjoint slots,
			// disjoint delta buffers — the contention-free shape.
			own, err := m.PNew(node, 0)
			if err != nil {
				b.Error(err)
				return
			}
			for pb.Next() {
				if err := m.SetRefFast(own, nextF, target); err != nil {
					b.Error(err)
					return
				}
			}
		})
		report(b, s0)
	})
}

// BenchmarkStringRoundTrip writes and reads back persistent strings. The
// device-op count per round trip must be O(1), not O(len): the payload
// moves with one bulk write and one bulk read.
func BenchmarkStringRoundTrip(b *testing.B) {
	rt, dev := benchRT(b)
	payload := strings.Repeat("s", 256)
	s0 := dev.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ref, err := rt.NewString(payload, true)
		if err != nil {
			b.Fatal(err)
		}
		got, err := rt.GetString(ref)
		if err != nil || len(got) != len(payload) {
			b.Fatalf("round trip failed: %v", err)
		}
		// The bench heap holds ~200k dead strings per GC cycle; collect
		// outside the measured window when it fills.
		if i%100000 == 99999 {
			b.StopTimer()
			if _, err := rt.PersistentGC("bench"); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	}
	d := dev.Stats().Sub(s0)
	b.ReportMetric(float64(d.Reads+d.Writes)/float64(b.N), "devops/op")
}

// BenchmarkFlushTransitive flushes a 64-node object graph, comparing the
// coalesced traversal (each covered cache line flushed once, one trailing
// fence) against a per-object FlushObject loop (one flush+fence each).
func BenchmarkFlushTransitive(b *testing.B) {
	rt, dev := benchRT(b)
	node := espresso.MustClass("bench/Node", nil,
		espresso.RefTo("next", "bench/Node"), espresso.Long("v"))
	const graph = 64
	refs := make([]espresso.Ref, graph)
	var prev espresso.Ref
	for i := range refs {
		r, err := rt.PNew(node)
		if err != nil {
			b.Fatal(err)
		}
		if err := rt.SetRef(r, "next", prev); err != nil {
			b.Fatal(err)
		}
		refs[i] = r
		prev = r
	}
	head := refs[len(refs)-1]

	report := func(b *testing.B, s0 nvm.Stats) {
		d := dev.Stats().Sub(s0)
		b.ReportMetric(float64(d.FlushedLines)/float64(b.N), "lines/op")
		b.ReportMetric(float64(d.Fences)/float64(b.N), "fences/op")
		b.ReportMetric(float64(d.Reads)/float64(b.N), "devreads/op")
	}

	b.Run("coalesced", func(b *testing.B) {
		s0 := dev.Stats()
		for i := 0; i < b.N; i++ {
			if err := rt.FlushTransitive(head); err != nil {
				b.Fatal(err)
			}
		}
		report(b, s0)
	})
	b.Run("per-object", func(b *testing.B) {
		s0 := dev.Stats()
		for i := 0; i < b.N; i++ {
			for _, r := range refs {
				if err := rt.FlushObject(r); err != nil {
					b.Fatal(err)
				}
			}
		}
		report(b, s0)
	})
}
