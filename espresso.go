// Package espresso is the public API of Espresso-Go, a reproduction of
// "Espresso: Brewing Java For More Non-Volatility with Non-volatile
// Memory" (ASPLOS 2018): a persistent Java heap (PJH) on simulated NVM
// with crash-consistent allocation and garbage collection, the pnew
// object model with alias-Klass type checks and three memory-safety
// levels, and the PJO persistence layer that replaces JPA's SQL
// transformation with direct persistent-object shipping.
//
// Quick start (the paper's Figure 11):
//
//	rt, _ := espresso.Open(espresso.Options{HeapDir: "/tmp/heaps"})
//	person := espresso.MustClass("Person", nil,
//		espresso.Long("id"), espresso.Str("name"))
//	if !rt.ExistsHeap("Jimmy") {
//		rt.CreateHeap("Jimmy", 16<<20)
//		p, _ := rt.PNew(person)
//		rt.SetLong(p, "id", 1)
//		name, _ := rt.NewString("Jimmy", true)
//		rt.SetRef(p, "name", name)
//		rt.FlushObject(p)
//		rt.SetRoot("Jimmy_info", p)
//	} else {
//		rt.LoadHeap("Jimmy")
//		p, _ := rt.GetRoot("Jimmy_info")
//		_ = p
//	}
//
// # Resolved field handles
//
// GetLong/SetRef resolve the class and field name on every call. Hot
// paths should resolve a FieldRef once — the analog of a resolved
// constant-pool entry in compiled bytecode — and access through it; the
// Fast accessors cost one device word operation plus the write barrier:
//
//	idF := rt.MustResolveField(person, "id")
//	nameF := rt.MustResolveField(person, "name")
//	p, _ := rt.PNew(person)
//	rt.SetLongFast(p, idF, 1)                  // no name map, no klass read
//	name, _ := rt.NewString("Jimmy", true)     // one bulk device write
//	rt.SetRefFast(p, nameF, name)              // full write barrier kept
//	id := rt.GetLongFast(p, idF)
//	_ = id
//
// Bulk transfers (CopyLongs, WriteLongs, CopyBytes, WriteBytes, string
// construction/reads) move whole spans with one device operation, and
// FlushTransitive/FlushBatch coalesce cache-line flushes with a single
// trailing fence, so device cost is proportional to bytes touched, not
// API calls made.
//
// # Scalable allocation
//
// PNew is safe for concurrent use but serializes on the heap's shared
// allocator. Goroutines that allocate heavily should each attach a
// mutator context — a persistent region-local allocation buffer (PLAB)
// that bump-allocates lock-free and persists a per-region top word, so
// allocation throughput scales with cores:
//
//	m, _ := rt.NewMutator()        // one per goroutine
//	defer m.Release()
//	p, _ := m.PNew(person, 0)      // arrayLen 0: lock-free after first use of a class
//
// A Mutator's reference stores are lock-free too: SetRef/SetRefFast
// through a Mutator record remembered-set maintenance in a
// mutator-local delta buffer (created and registered automatically)
// that merges into the shared set only at publication points —
// transaction commit, GC safepoints, buffer overflow — so the hot
// store path touches no shared lock or cache line.
//
// # Concurrent persistent GC
//
// PersistentGC stops the world for the whole collection; with
// Options.ConcurrentGC (or PersistentGCConcurrent) marking runs
// concurrently with mutators under a snapshot-at-the-beginning barrier,
// and only final remark + compaction pause them. Both phases are also
// parallel: marking fans out over Options.GCWorkers work-stealing
// tracers (default GOMAXPROCS) that drain the SATB and remembered-set
// delta buffers alongside tracing, and the compaction pause shards its
// reference-fix and fill passes over the same pool — see docs/gc.md for
// the pipeline and its crash rule. Compaction moves
// objects and patches every root it can see — named roots, handles,
// heap and volatile slots — but never Go local variables, so code that
// mutates concurrently with collections must hold its references inside
// a Mutator.Do scope (which pins the world) or re-fetch them from roots
// after it:
//
//	m.Do(func() {
//		head, _ := m.GetRoot("list")
//		n, _ := m.PNew(node, 0)
//		m.SetRefFast(n, nextF, head)
//		m.SetRoot("list", n)
//	})
//
// # Durable concurrent index
//
// OpenPMap returns a lock-free, resizable persistent hash map
// (internal/pindex) whose operations are durable-linearizable: when Put
// or Delete returns, the mutation is persisted — no FlushObject — and a
// crash at any point reloads exactly the committed mappings:
//
//	m, _ := rt.OpenPMap("Jimmy", "sessions", espresso.PMapOptions{})
//	m.Put(42, p)          // durable on return; safe from any goroutine
//	v, ok := m.Get(42)
//	m.Delete(42)
//
// # Sharded maps
//
// When one heap's collector pauses or one device's flush chain becomes
// the bottleneck, OpenSharded range-partitions a map over N independent
// persistent heaps (internal/pshard). Each shard owns its own device,
// region-top table, index, GC phase word, and safepoint domain, so
// collections pause one shard at a time and nothing — no lock, no fence,
// no cache line — is shared between shards. Reopening recovers all
// shards in parallel; restart time tracks the slowest shard:
//
//	s, _ := rt.OpenSharded("sessions", espresso.ShardedPMapOptions{Shards: 4})
//	s.Put(42, 1000)       // routed by hash range; durable on return
//	v, ok := s.Get(42)
//	s.GCShard(s.ShardOf(42))  // staggered pause: other shards keep serving
//
// See docs/sharding.md for the manifest format and crash rules.
//
// # The facade
//
// The facade re-exports the runtime in internal/core with small
// conveniences; the substrates (NVM device, heap, collectors, database,
// providers) live under internal/.
package espresso

import (
	"time"

	"espresso/internal/core"
	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/nvm"
	"espresso/internal/pgc"
	"espresso/internal/pheap"
	"espresso/internal/telemetry"
	"espresso/internal/vheap"
)

// Ref is an object reference (0 is null).
type Ref = layout.Ref

// Class describes an object layout (the Klass of the simulated JVM).
type Class = klass.Klass

// Field declares one instance field.
type Field = klass.Field

// Runtime is a simulated JVM instance with volatile and persistent heaps.
type Runtime struct {
	*core.Runtime
	telHTTP *telemetry.HTTPServer
}

// MetricsSnapshot is one folded view of the runtime's telemetry —
// counters, gauges, histograms, and the retained GC/recovery span
// timeline. Obtain one with Runtime.Metrics (or ShardedPMap.Metrics for
// a sharded set's per-shard aggregate).
type MetricsSnapshot = telemetry.Snapshot

// SpanEvent is one timestamped phase event in a metrics snapshot's
// timeline (GC phases, safepoint waits, recovery passes).
type SpanEvent = telemetry.Span

// FieldRef is a resolved field handle (klass identity + byte offset +
// type), the fast-path alternative to name-resolving accessors. Resolve
// once with ResolveField/MustResolveField, then use the *Fast accessors.
type FieldRef = core.FieldRef

// Mutator is a per-goroutine allocation context with its own persistent
// region-local allocation buffer; obtain one with Runtime.NewMutator.
type Mutator = core.Mutator

// SafetyLevel selects the §3.4 memory-safety contract.
type SafetyLevel = core.SafetyLevel

// The three safety levels of the paper.
const (
	UserGuaranteed = core.UserGuaranteed
	Zeroing        = core.Zeroing
	TypeBased      = core.TypeBased
)

// GCResult reports a persistent collection.
type GCResult = pgc.Result

// Options configures Open.
type Options struct {
	// HeapDir persists heap images as files; empty keeps them in memory.
	HeapDir string
	// Safety selects the memory-safety level (default UserGuaranteed).
	Safety SafetyLevel
	// DefaultHeapSize is used by CreateHeap when size is 0 (default 16 MB).
	DefaultHeapSize int
	// TrackedNVM enables crash-image support on heap devices (slower).
	TrackedNVM bool
	// NVMWriteLatency models media write cost per flushed line.
	NVMWriteLatency time.Duration
	// StrictCast disables alias Klasses, reproducing paper Figure 10.
	StrictCast bool
	// ConcurrentGC makes PersistentGC collect with concurrent SATB
	// marking: mutators keep allocating and storing (through the
	// pre-write barrier) while the object graph is traced, and only
	// final remark + compaction pause them. PersistentGCConcurrent
	// selects the concurrent collector per call regardless.
	ConcurrentGC bool
	// GCWorkers sizes the parallel GC pool: concurrent marking fans out
	// over this many work-stealing tracers, and the compaction pause
	// shards its reference-fix and fill passes over the same count.
	// Zero (the default) means GOMAXPROCS; 1 reproduces the serial
	// collector exactly. The resulting heap image is identical for every
	// value on a quiescent heap.
	GCWorkers int
	// VolatileHeap sizes the DRAM young/old generations.
	VolatileHeap vheap.Config
	// Telemetry enables the runtime's observability registry: per-mutator
	// lock-free counter cells (allocation, barrier, index, and attributed
	// device traffic), GC phase spans, and latency histograms, folded on
	// demand by Runtime.Metrics. The mutator fast path stays free of
	// atomics and fences whether this is on or off; see
	// docs/observability.md for the metric catalog and overhead contract.
	Telemetry bool
	// TelemetryAddr additionally serves the metrics over HTTP on this
	// listen address ("localhost:9180", or ":0" to pick a free port —
	// read it back with Runtime.TelemetryAddr). GET /metrics renders
	// Prometheus text, GET /vars the expvar-style JSON snapshot that
	// `heaptool top` polls, and /debug/pprof/* the standard Go profiles
	// (GC pool workers and shard recovery goroutines carry pprof labels).
	// Setting it implies Telemetry.
	TelemetryAddr string
	// FlightRecorder journals every heap's publication points (create,
	// load, GC phase transitions, recovery, redo commit, PLAB handoffs,
	// safepoint aggregates) into the NVM ring each heap image carries, so
	// `heaptool postmortem` can reconstruct what the runtime was doing
	// from a crashed image alone. Each event is one 64-byte line write +
	// flush riding an already-fenced publication point: recording adds
	// zero fences to mutator fast paths.
	FlightRecorder bool
}

// Open boots a runtime.
func Open(opts Options) (*Runtime, error) {
	mode := nvm.Direct
	if opts.TrackedNVM {
		mode = nvm.Tracked
	}
	if opts.DefaultHeapSize == 0 {
		opts.DefaultHeapSize = 16 << 20
	}
	rt, err := core.NewRuntime(core.Config{
		HeapDir:         opts.HeapDir,
		Safety:          opts.Safety,
		Volatile:        opts.VolatileHeap,
		NVMMode:         mode,
		NVMWriteLatency: opts.NVMWriteLatency,
		PJHDataSize:     opts.DefaultHeapSize,
		StrictCast:      opts.StrictCast,
		ConcurrentGC:    opts.ConcurrentGC,
		GCWorkers:       opts.GCWorkers,
		Telemetry:       opts.Telemetry || opts.TelemetryAddr != "",
		FlightRecorder:  opts.FlightRecorder,
	})
	if err != nil {
		return nil, err
	}
	r := &Runtime{Runtime: rt}
	if opts.TelemetryAddr != "" {
		srv, err := telemetry.StartHTTP(opts.TelemetryAddr, rt.Telemetry())
		if err != nil {
			return nil, err
		}
		r.telHTTP = srv
	}
	return r, nil
}

// TelemetryAddr reports the metrics listener's bound address (empty when
// Options.TelemetryAddr was not set). With ":0" this is how callers
// learn the picked port.
func (rt *Runtime) TelemetryAddr() string {
	if rt.telHTTP == nil {
		return ""
	}
	return rt.telHTTP.Addr()
}

// Close shuts the runtime's exporter listener down (a no-op without
// TelemetryAddr). Heap images need no teardown — durability is
// per-operation — so this is the runtime's only lifecycle call.
func (rt *Runtime) Close() error {
	if rt.telHTTP == nil {
		return nil
	}
	return rt.telHTTP.Close()
}

// NewClass declares a class. Use the Long/Str/RefTo field constructors.
func NewClass(name string, super *Class, fields ...Field) (*Class, error) {
	return klass.NewInstance(name, super, fields...)
}

// MustClass is NewClass for static declarations; panics on error.
func MustClass(name string, super *Class, fields ...Field) *Class {
	return klass.MustInstance(name, super, fields...)
}

// Long declares a 64-bit integer field.
func Long(name string) Field { return Field{Name: name, Type: layout.FTLong} }

// Double declares a float64 field (stored as its bit pattern).
func Double(name string) Field { return Field{Name: name, Type: layout.FTDouble} }

// Str declares a reference field typed as the built-in string class.
func Str(name string) Field {
	return Field{Name: name, Type: layout.FTRef, RefKlass: core.StringKlassName}
}

// RefTo declares a reference field with a declared class.
func RefTo(name, className string) Field {
	return Field{Name: name, Type: layout.FTRef, RefKlass: className}
}

// PNew allocates a persistent object (the pnew keyword).
func (rt *Runtime) PNew(k *Class) (Ref, error) { return rt.Runtime.PNew(k, 0) }

// PNewArray allocates a persistent object array (panewarray).
func (rt *Runtime) PNewArray(elemClass string, n int) (Ref, error) {
	return rt.Runtime.PNew(rt.Reg.ObjArray(elemClass), n)
}

// PNewLongArray allocates a persistent long[] (pnewarray).
func (rt *Runtime) PNewLongArray(n int) (Ref, error) {
	return rt.Runtime.PNew(rt.Reg.PrimArray(layout.FTLong), n)
}

// New allocates a volatile object (plain Java new).
func (rt *Runtime) New(k *Class) (Ref, error) { return rt.Runtime.New(k, 0) }

// CreateHeap creates a persistent heap (Table 1). size 0 uses the default.
func (rt *Runtime) CreateHeap(name string, size int) error {
	_, err := rt.Runtime.CreateHeap(name, size)
	return err
}

// LoadHeap loads an existing heap, running crash recovery and the
// configured safety scan (Table 1).
func (rt *Runtime) LoadHeap(name string) error {
	_, err := rt.Runtime.LoadHeap(name)
	return err
}

// PersistentGC forces a crash-consistent collection of a heap
// (System.gc() for the persistent space). With Options.ConcurrentGC it
// runs the concurrent collector.
func (rt *Runtime) PersistentGC(name string) (GCResult, error) {
	return rt.Runtime.PersistentGC(name)
}

// PersistentGCConcurrent forces a crash-consistent collection with SATB
// concurrent marking: mutators on other goroutines keep running while
// the graph is traced; only final remark + compaction + the redo-log
// finish stop the world. GCResult.PauseTime reports that stop-the-world
// portion, GCResult.MarkTime the overlapped marking.
func (rt *Runtime) PersistentGCConcurrent(name string) (GCResult, error) {
	return rt.Runtime.PersistentGCConcurrent(name)
}

// PersistentGCConcurrentWorkers is PersistentGCConcurrent with an
// explicit GC pool size, overriding Options.GCWorkers for this cycle.
func (rt *Runtime) PersistentGCConcurrentWorkers(name string, workers int) (GCResult, error) {
	return rt.Runtime.PersistentGCConcurrentWorkers(name, workers)
}

// Heap exposes a loaded heap by name (diagnostics, tooling).
func (rt *Runtime) Heap(name string) (*pheap.Heap, bool) {
	for _, h := range rt.Heaps() {
		if h.Name() == name {
			return h, true
		}
	}
	return nil, false
}
