package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"espresso/internal/telemetry"
)

// runTop is the live-metrics mode: it polls a runtime's /vars endpoint
// (espresso.Options.TelemetryAddr) and renders per-interval rates, pool
// gauges, and the most recent GC/recovery spans — `top` for a persistent
// heap. iters 0 polls forever.
func runTop(addr string, interval time.Duration, iters int) error {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	url := strings.TrimSuffix(addr, "/") + "/vars"
	client := &http.Client{Timeout: interval}
	var prev telemetry.Snapshot
	var prevSeq uint64
	first := true
	for tick := 0; iters == 0 || tick < iters; tick++ {
		if tick > 0 {
			time.Sleep(interval)
		}
		snap, err := fetchSnapshot(client, url)
		if err != nil {
			return err
		}
		printFrame(snap, prev, prevSeq, first, interval)
		for _, sp := range snap.Spans {
			if sp.Seq >= prevSeq {
				prevSeq = sp.Seq + 1
			}
		}
		prev, first = snap, false
	}
	return nil
}

func fetchSnapshot(client *http.Client, url string) (telemetry.Snapshot, error) {
	var s telemetry.Snapshot
	resp, err := client.Get(url)
	if err != nil {
		return s, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return s, fmt.Errorf("heaptool top: %s: %s", url, resp.Status)
	}
	return s, json.NewDecoder(resp.Body).Decode(&s)
}

// printFrame renders one poll: totals on the first frame, then
// per-second rates for every counter that moved, gauges, and any spans
// recorded since the previous frame.
func printFrame(snap, prev telemetry.Snapshot, prevSeq uint64, first bool, interval time.Duration) {
	fmt.Printf("── %s ", time.Now().Format("15:04:05"))
	if first {
		fmt.Printf("(totals)\n")
	} else {
		fmt.Printf("(Δ/s over %v)\n", interval)
	}
	secs := interval.Seconds()
	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := snap.Counters[name]
		if first {
			if v != 0 {
				fmt.Printf("  %-32s %d\n", name, v)
			}
			continue
		}
		if d := v - prev.Counters[name]; d != 0 {
			fmt.Printf("  %-32s %.0f/s\n", name, float64(d)/secs)
		}
	}
	gnames := make([]string, 0, len(snap.Gauges))
	for name := range snap.Gauges {
		gnames = append(gnames, name)
	}
	sort.Strings(gnames)
	for _, name := range gnames {
		fmt.Printf("  %-32s %d (gauge)\n", name, snap.Gauges[name])
	}
	for _, sp := range snap.Spans {
		if !first && sp.Seq < prevSeq {
			continue
		}
		loc := ""
		if sp.Shard >= 0 {
			loc += fmt.Sprintf(" shard=%d", sp.Shard)
		}
		if sp.Worker >= 0 {
			loc += fmt.Sprintf(" worker=%d", sp.Worker)
		}
		fmt.Printf("  span %-22s %12v%s\n", sp.Name, sp.Dur, loc)
	}
}
