package main

import (
	"encoding/json"
	"fmt"
	"os"

	"espresso/internal/nvm"
	"espresso/internal/pheap"
	"espresso/internal/telemetry/blackbox"
)

// runPostmortem decodes the flight-recorder ring out of a raw heap image
// and renders it: a bounded event timeline, the GC cycles reconstructed
// from phase-transition events, and the recovery narrative. It never
// writes to the device — a crashed image stays byte-identical evidence.
func runPostmortem(dev *nvm.Device, lastN int, asJSON bool) error {
	off, size, err := pheap.BlackboxRegion(dev)
	if err != nil {
		return fmt.Errorf("heaptool: postmortem: %w", err)
	}
	tl, err := blackbox.Decode(dev, off, size)
	if err != nil {
		return fmt.Errorf("heaptool: postmortem: %w", err)
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(tl)
	}
	blackbox.WriteText(os.Stdout, tl, lastN)
	return nil
}
