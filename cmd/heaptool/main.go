// Command heaptool inspects and verifies persistent-heap images:
//
//	heaptool -heap /path/img.pjh info      geometry, klasses, roots
//	heaptool -heap /path/img.pjh verify    parse the whole heap
//	heaptool -heap /path/img.pjh gc        run (or resume) a collection
//	heaptool -heap /path/img.pjh inspect   GC-phase word, format version,
//	                                       per-region top table
//	heaptool -heap /path/img.pjh postmortem   decode the flight-recorder
//	                                       journal from a (possibly
//	                                       crashed) image: event timeline,
//	                                       GC cycle reconstruction,
//	                                       recovery narrative. -last N
//	                                       bounds the timeline, -json
//	                                       emits the raw decoded events.
//	heaptool -addr localhost:9180 top      live metrics: poll a running
//	                                       runtime's telemetry endpoint
//	heaptool -heap /path/img.pjh scrub     read-only integrity walk:
//	                                       verify metadata checksums
//	                                       (GC-phase word, redo batch,
//	                                       region-top table, manifest)
//	                                       without repairing anything
//
// Pointing any command at a shard-set manifest (<base>-manifest.pjh)
// prints (or scrubs) the manifest — shard count, generation, hash-range
// table — instead of attempting a heap parse.
//
// Exit codes (scripts and CI key off these):
//
//	0  success; for scrub, every verifiable structure verified
//	1  runtime error (I/O, collection failure, telemetry endpoint down)
//	2  usage error (bad flags, unknown command)
//	3  image unreadable (bad magic, unsupported version, insane geometry)
//	4  image corrupt (readable, but integrity checks failed)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"espresso/internal/klass"
	"espresso/internal/layout"
	"espresso/internal/nvm"
	"espresso/internal/pgc"
	"espresso/internal/pheap"
	"espresso/internal/pshard"
)

// Exit codes: distinct classes so scripts can tell a broken image from a
// broken invocation (the table in the package doc is the contract).
const (
	exitErr        = 1 // runtime/tooling error
	exitUsage      = 2 // bad flags or command
	exitUnreadable = 3 // image cannot be interpreted at all
	exitCorrupt    = 4 // image readable, integrity checks failed
)

func fatalf(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "heaptool: "+format+"\n", args...)
	os.Exit(code)
}

func usage(code int) {
	fmt.Fprintln(os.Stderr, `usage: heaptool -heap <image.pjh> info|verify|gc|inspect|postmortem|scrub [-last N] [-json]
       heaptool -addr <host:port> [-interval 2s] [-n 0] top

exit codes:
  0  success (scrub: every verifiable structure verified)
  1  runtime error (I/O, collection failure, endpoint down)
  2  usage error (bad flags, unknown command)
  3  image unreadable (bad magic, unsupported version, insane geometry)
  4  image corrupt (readable, but integrity checks failed)`)
	os.Exit(code)
}

func main() {
	path := flag.String("heap", "", "heap image file (.pjh)")
	addr := flag.String("addr", "", "telemetry endpoint for `top` (host:port of Options.TelemetryAddr)")
	interval := flag.Duration("interval", 2*time.Second, "poll interval for `top`")
	iters := flag.Int("n", 0, "number of `top` polls (0 = forever)")
	lastN := flag.Int("last", 0, "`postmortem`: show only the last N timeline events (0 = all)")
	asJSON := flag.Bool("json", false, "`postmortem`: emit the decoded timeline as JSON instead of text")
	flag.Parse()
	cmd := flag.Arg(0)
	if cmd == "top" {
		// Live mode talks to a running runtime over HTTP; no image needed.
		if *addr == "" {
			usage(exitUsage)
		}
		if err := runTop(*addr, *interval, *iters); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *path == "" || cmd == "" {
		usage(exitUsage)
	}
	dev, err := nvm.LoadFile(*path, nvm.Config{Mode: nvm.Tracked})
	if err != nil {
		fatalf(exitErr, "%v", err)
	}
	if pshard.IsManifest(dev) {
		// A shard-set manifest is not a heap: describe (or scrub) it and
		// point at the per-shard images instead of failing the pheap parse.
		m, err := pshard.ReadManifest(dev)
		if err != nil {
			// The magic matched, so the device *is* a manifest — a parse
			// failure past that point is corruption, not unreadability.
			fatalf(exitCorrupt, "corrupt manifest: %v", err)
		}
		if cmd == "scrub" {
			fmt.Printf("manifest OK: %d shards, generation %d\n", m.Shards, m.Generation)
			return
		}
		fmt.Printf("shard manifest (not a heap image)\n")
		fmt.Printf("shards         %d\n", m.Shards)
		fmt.Printf("generation     %d\n", m.Generation)
		fmt.Printf("shard size     %d data bytes each\n", m.ShardDataSize)
		for i, b := range m.Bounds {
			hi := "max"
			if i+1 < len(m.Bounds) {
				hi = fmt.Sprintf("%#x", m.Bounds[i+1])
			}
			fmt.Printf("  shard %3d    hash range [%#x, %s)\n", i, b, hi)
		}
		fmt.Printf("inspect the per-shard heap images (<base>-s0.pjh ...) individually\n")
		return
	}
	if cmd == "postmortem" {
		// Post-mortem decodes straight off the raw device, before (and
		// without) pheap.Load: loading repairs a torn image in place —
		// clearing phase words, finishing redo — which is exactly the
		// evidence a post-mortem wants intact.
		if err := runPostmortem(dev, *lastN, *asJSON); err != nil {
			log.Fatal(err)
		}
		return
	}
	if cmd == "scrub" {
		// Scrub, like postmortem, works on the raw device: Load would
		// upgrade formats, replay redo, and plug regions — all mutations
		// an image under investigation must not suffer.
		rep, err := pheap.Scrub(dev)
		if err != nil {
			fatalf(exitUnreadable, "unreadable image: %v", err)
		}
		fmt.Printf("format version %d (checksummed: %v)\n", rep.FormatVersion, rep.Checksummed)
		fmt.Printf("gc active      %v\n", rep.GCActive)
		fmt.Printf("redo pending   %v\n", rep.RedoPending)
		fmt.Printf("regions checked %d\n", rep.RegionsChecked)
		for _, f := range rep.Findings {
			fmt.Printf("CORRUPT: %s\n", f)
		}
		if rep.Corrupt() {
			fatalf(exitCorrupt, "%d corruption finding(s)", len(rep.Findings))
		}
		fmt.Printf("OK: no corruption detected\n")
		return
	}
	h, err := pheap.Load(dev, klass.NewRegistry())
	if err != nil {
		// Load's errors carry their class: geometry/magic/version failures
		// say "unreadable", checksum and structural failures say "corrupt".
		code := exitUnreadable
		if strings.Contains(err.Error(), "corrupt") {
			code = exitCorrupt
		}
		fatalf(code, "%v", err)
	}

	switch cmd {
	case "info":
		g := h.Geo()
		fmt.Printf("base address   %#x\n", uint64(h.Base()))
		fmt.Printf("device size    %d bytes\n", dev.Size())
		fmt.Printf("data area      %d bytes in %d regions\n", g.DataSize, g.Regions())
		fmt.Printf("used           %d bytes\n", h.UsedBytes())
		fmt.Printf("global ts      %d\n", h.GlobalTS())
		fmt.Printf("gc active      %v\n", h.GCActive())
		fmt.Printf("klasses        %d\n", h.KlassCount())
		for _, r := range h.Roots() {
			fmt.Printf("root %-24s → %#x\n", r.Name, uint64(r.Ref))
		}
	case "verify":
		objects, fillers, bytes := 0, 0, 0
		err := h.ForEachObject(func(off int, k *klass.Klass, size int) bool {
			if pheap.IsFiller(k) {
				fillers++
			} else {
				objects++
			}
			bytes += size
			return true
		})
		if err != nil {
			fatalf(exitCorrupt, "heap does not parse: %v", err)
		}
		fmt.Printf("OK: %d objects, %d fillers, %d bytes parseable\n", objects, fillers, bytes)
	case "gc":
		if h.GCActive() {
			res, err := pgc.Recover(h)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("recovered interrupted collection: %d live objects, %d moved\n",
				res.LiveObjects, res.MovedObjects)
		} else {
			res, err := pgc.Collect(h, pgc.NoRoots{})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("collected: %d live objects (%d bytes), %d moved, pause %v\n",
				res.LiveObjects, res.LiveBytes, res.MovedObjects, res.PauseTime)
		}
		if err := dev.Save(*path); err != nil {
			log.Fatal(err)
		}
	case "inspect":
		// The GC/allocation state PRs 2–3 put into the image, surfaced:
		// format version, the concurrent collector's phase word, the
		// PLAB allocator's per-region persisted top table, and (PR 5)
		// the remembered-set footprint of the write-combining barrier.
		g := h.Geo()
		fmt.Printf("format version %d\n", h.FormatVersion())
		phase := "idle"
		if h.GCPhase() == pheap.GCPhaseConcurrentMark {
			phase = "concurrent-mark (mark was in flight; next load discards it)"
		}
		fmt.Printf("gc phase       %s\n", phase)
		fmt.Printf("gc active      %v\n", h.GCActive())
		fmt.Printf("global ts      %d\n", h.GlobalTS())
		fmt.Printf("redo pending   %v\n", h.RedoPending())
		// Remembered-set footprint: slots whose persisted value points
		// outside this heap. On a single-heap image these are exactly the
		// slots the runtime's NVM→DRAM remembered set tracked (volatile
		// references die with their process); a multi-heap deployment's
		// image also counts legal cross-heap NVM references here, since
		// one image cannot tell a sibling heap's address from a dead DRAM
		// one — hence "candidates". Per-buffer pending-delta counts show
		// the write-combining barrier's unpublished records (always zero
		// on a cold image; meaningful when inspecting a live heap).
		outRefs := 0
		err := h.ForEachObject(func(off int, k *klass.Klass, size int) bool {
			if pheap.IsFiller(k) {
				return true
			}
			pheap.RefSlots(h.Device(), off, k, func(slotBoff int) {
				v := layout.UntagRef(layout.Ref(h.Device().ReadU64(off + slotBoff)))
				if v != layout.NullRef && !h.Contains(v) {
					outRefs++
				}
			})
			return true
		})
		if err != nil {
			log.Fatalf("remset scan: %v", err)
		}
		fmt.Printf("remset slots   %d candidate(s) (out-of-heap refs; includes cross-heap refs on multi-heap images)\n", outRefs)
		pending := h.RemsetDeltaStats()
		total := 0
		for _, n := range pending {
			total += n
		}
		fmt.Printf("remset deltas  %d pending across %d buffers\n", total, len(pending))
		for i, n := range pending {
			if n > 0 {
				fmt.Printf("  buffer %2d    %d pending deltas\n", i, n)
			}
		}
		// Mark-bitmap view: what the last (or in-flight) collection knew.
		// The high-water mark is the device offset one past the highest
		// mark bit — on a mid-collection image it bounds how far marking
		// got; per-region live bytes decode the same begin/end bit pairs
		// the summary phase uses, so they are estimates only in the sense
		// that the bitmap may be stale on an idle image (a completed cycle
		// leaves the bits of its own mark, aged by any allocation since).
		liveByRegion := make([]int, g.DataRegions())
		highWater, markBits := -1, 0
		begin := -1
		usedBits := (h.Top() - g.DataOff) / layout.WordSize
		h.MarkBitmap().ForEachSetBelow(usedBits, func(b int) {
			markBits++
			if begin < 0 {
				begin = b
				return
			}
			src := g.DataOff + begin*layout.WordSize
			size := (b - begin + 1) * layout.WordSize
			highWater = src + size
			for r := (src - g.DataOff) / layout.RegionSize; r <= (src+size-1-g.DataOff)/layout.RegionSize; r++ {
				lo := g.DataOff + r*layout.RegionSize
				hi := lo + layout.RegionSize
				if src > lo {
					lo = src
				}
				if src+size < hi {
					hi = src + size
				}
				liveByRegion[r] += hi - lo
			}
			begin = -1
		})
		if begin >= 0 {
			fmt.Printf("mark bitmap    UNPAIRED begin bit (truncated mark)\n")
		}
		if highWater < 0 {
			fmt.Printf("mark bitmap    empty (no completed mark recorded)\n")
		} else {
			fmt.Printf("mark bitmap    %d bits set, high water +%#x\n", markBits, highWater)
		}
		fmt.Printf("region top table (%d data regions of %d KB, stride %d B):\n",
			g.DataRegions(), layout.RegionSize>>10, layout.RegionTopStride)
		for r := 0; r < g.DataRegions(); r++ {
			start := g.DataOff + r*layout.RegionSize
			end := start + layout.RegionSize
			top := h.RegionTop(r)
			live := ""
			if liveByRegion[r] > 0 {
				live = fmt.Sprintf(", ~%d live bytes marked", liveByRegion[r])
			}
			switch {
			case top == 0:
				fmt.Printf("  region %3d  untouched%s\n", r, live)
			case !pheap.IsRealTop(top):
				fmt.Printf("  region %3d  humongous interior%s\n", r, live)
			case top > end:
				fmt.Printf("  region %3d  humongous head, run parses to +%d (%d bytes)%s\n",
					r, top, top-start, live)
			case top == end:
				fmt.Printf("  region %3d  full (top +%d)%s\n", r, top, live)
			default:
				fmt.Printf("  region %3d  partial: top +%d (%d/%d bytes used)%s\n",
					r, top, top-start, layout.RegionSize, live)
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "heaptool: unknown command %q\n", cmd)
		usage(exitUsage)
	}
}
