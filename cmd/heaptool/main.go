// Command heaptool inspects and verifies persistent-heap images:
//
//	heaptool -heap /path/img.pjh info      geometry, klasses, roots
//	heaptool -heap /path/img.pjh verify    parse the whole heap
//	heaptool -heap /path/img.pjh gc        run (or resume) a collection
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"espresso/internal/klass"
	"espresso/internal/nvm"
	"espresso/internal/pgc"
	"espresso/internal/pheap"
)

func main() {
	path := flag.String("heap", "", "heap image file (.pjh)")
	flag.Parse()
	cmd := flag.Arg(0)
	if *path == "" || cmd == "" {
		fmt.Fprintln(os.Stderr, "usage: heaptool -heap <image.pjh> info|verify|gc")
		os.Exit(2)
	}
	dev, err := nvm.LoadFile(*path, nvm.Config{Mode: nvm.Tracked})
	if err != nil {
		log.Fatal(err)
	}
	h, err := pheap.Load(dev, klass.NewRegistry())
	if err != nil {
		log.Fatal(err)
	}

	switch cmd {
	case "info":
		g := h.Geo()
		fmt.Printf("base address   %#x\n", uint64(h.Base()))
		fmt.Printf("device size    %d bytes\n", dev.Size())
		fmt.Printf("data area      %d bytes in %d regions\n", g.DataSize, g.Regions())
		fmt.Printf("used           %d bytes\n", h.UsedBytes())
		fmt.Printf("global ts      %d\n", h.GlobalTS())
		fmt.Printf("gc active      %v\n", h.GCActive())
		fmt.Printf("klasses        %d\n", h.KlassCount())
		for _, r := range h.Roots() {
			fmt.Printf("root %-24s → %#x\n", r.Name, uint64(r.Ref))
		}
	case "verify":
		objects, fillers, bytes := 0, 0, 0
		err := h.ForEachObject(func(off int, k *klass.Klass, size int) bool {
			if pheap.IsFiller(k) {
				fillers++
			} else {
				objects++
			}
			bytes += size
			return true
		})
		if err != nil {
			log.Fatalf("heap does not parse: %v", err)
		}
		fmt.Printf("OK: %d objects, %d fillers, %d bytes parseable\n", objects, fillers, bytes)
	case "gc":
		if h.GCActive() {
			res, err := pgc.Recover(h)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("recovered interrupted collection: %d live objects, %d moved\n",
				res.LiveObjects, res.MovedObjects)
		} else {
			res, err := pgc.Collect(h, pgc.NoRoots{})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("collected: %d live objects (%d bytes), %d moved, pause %v\n",
				res.LiveObjects, res.LiveBytes, res.MovedObjects, res.PauseTime)
		}
		if err := dev.Save(*path); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown command %q", cmd)
	}
}
