// Command h2shell is a minimal interactive SQL shell for the embedded
// database — handy for poking at the JPA provider's schema:
//
//	go run ./cmd/h2shell
//	sql> CREATE TABLE person (id BIGINT PRIMARY KEY, name VARCHAR)
//	sql> INSERT INTO person (id, name) VALUES (1, 'Jimmy')
//	sql> SELECT * FROM person
package main

import (
	"bufio"
	"fmt"
	"log"
	"os"
	"strings"

	"espresso/internal/h2"
	"espresso/internal/nvm"
)

func main() {
	db, err := h2.New(64<<20, nvm.Direct)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("embedded H2-style database; end with \\q")
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("sql> ")
		if !sc.Scan() {
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == "\\q" || strings.EqualFold(line, "exit"):
			return
		case strings.HasPrefix(strings.ToUpper(line), "SELECT"):
			rows, err := db.Query(line)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println(strings.Join(rows.Columns, " | "))
			for rows.Next() {
				cells := make([]string, len(rows.Row()))
				for i, v := range rows.Row() {
					cells[i] = v.String()
				}
				fmt.Println(strings.Join(cells, " | "))
			}
			fmt.Printf("(%d rows)\n", rows.Len())
		default:
			n, err := db.Exec(line)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("ok (%d rows affected)\n", n)
		}
	}
}
