// Command benchgate compares a fresh espresso-bench JSON dump against a
// committed baseline and fails (exit 1) on regressions — CI's enforcement
// arm for the device-cost contracts.
//
//	benchgate -baseline BENCH_fastpath.json -current out.json [-tol 0.10] [-minspeedup 3]
//
// Rows are matched by their identity fields (op, or series+goroutines).
// Gated fields are the deterministic device-cost metrics: dev_*,
// flushed_lines_per_op, fences_per_op, and modeled_ns_per_op — a current
// value may not exceed baseline×(1+tol) plus a small absolute slack.
// Wall-clock fields (ns_per_op, wall_*_ns) are reported but never gated:
// CI runners make them noise. modeled_speedup_vs_1 is gated as a lower
// bound — it may not drop below baseline×(1−tol), nor below -minspeedup
// when that flag is set (the parallel-allocation scaling claim).
// pause_reduction_vs_stw is gated only by the -minpausereduction floor:
// the concurrent row's in-pause work varies with goroutine scheduling,
// so a baseline-relative bound would flake where the absolute claim
// ("≥ Nx") still holds. modeled_parallel_speedup (the GC worker-pool
// critical-path claim) is floor-gated the same way, by
// -minparallelspeedup on the largest-workers row: the per-worker maxima
// behind it depend on how work stealing splits the object graph, which
// the goroutine scheduler decides. recovery_speedup_vs_serial (the
// sharded parallel-recovery claim) is floor-gated by -minrecoveryspeedup
// on the largest-workers recovery-series row.
//
// Pause-time metrics additionally use an absolute-ceiling class: a
// baseline field named X_ceiling bounds the current row's X by its
// literal value — not a ratio against a measured baseline, because a
// pause budget is a promise ("remark + compaction fit in N ms"), not a
// drift check.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

type row = map[string]any

func load(path string) ([]row, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []row
	if err := json.Unmarshal(b, &rows); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rows, nil
}

// key builds the row identity from its non-numeric fields plus the
// shard, goroutine, mutator, and GC/recovery-worker counts, covering
// the fastpath ({op}), alloc ({series, goroutines}), gcpause ({series,
// mutators, workers}), and shardedkv ({series, shards, goroutines} and
// {series, shards, workers}) schemas.
func key(r row) string {
	var parts []string
	for _, f := range []string{"op", "series", "shards", "goroutines", "mutators", "workers"} {
		if v, ok := r[f]; ok {
			parts = append(parts, fmt.Sprint(v))
		}
	}
	return strings.Join(parts, "/")
}

func isGatedUpper(field string) bool {
	switch {
	case strings.HasPrefix(field, "dev_"),
		field == "flushed_lines_per_op",
		field == "fences_per_op",
		field == "modeled_ns_per_op":
		return true
	}
	return false
}

func main() {
	basePath := flag.String("baseline", "", "committed baseline JSON")
	curPath := flag.String("current", "", "freshly measured JSON")
	tol := flag.Float64("tol", 0.10, "relative tolerance")
	minSpeedup := flag.Float64("minspeedup", 0, "required modeled_speedup_vs_1 at the largest goroutine count (0 = off)")
	speedupSeries := flag.String("speedupseries", "plab", "series whose largest-goroutine row -minspeedup applies to")
	minPauseReduction := flag.Float64("minpausereduction", 0, "required pause_reduction_vs_stw on the concurrent gcpause row (0 = off)")
	minParallelSpeedup := flag.Float64("minparallelspeedup", 0, "required modeled_parallel_speedup at the largest GC worker count (0 = off)")
	minRecoverySpeedup := flag.Float64("minrecoveryspeedup", 0, "required recovery_speedup_vs_serial at the largest recovery worker count (0 = off)")
	flag.Parse()
	if *basePath == "" || *curPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -baseline and -current are required")
		os.Exit(2)
	}
	baseRows, err := load(*basePath)
	if err != nil {
		fatal(err)
	}
	curRows, err := load(*curPath)
	if err != nil {
		fatal(err)
	}
	current := map[string]row{}
	for _, r := range curRows {
		current[key(r)] = r
	}

	const absSlack = 0.05 // forgives rounding on near-zero counts
	failures := 0
	bestG, bestGShards, bestSpeedup := -1.0, -1.0, 0.0
	bestW, bestParallel := -1.0, 0.0
	bestRW, bestRecovery := -1.0, 0.0
	pauseReduction, pauseRowSeen := 0.0, false
	for _, base := range baseRows {
		k := key(base)
		cur, ok := current[k]
		if !ok {
			fmt.Printf("FAIL %-24s row missing from current run\n", k)
			failures++
			continue
		}
		for field, bv := range base {
			b, isNum := bv.(float64)
			if !isNum {
				continue
			}
			if gated, target := strings.CutSuffix(field, "_ceiling"); target {
				// Absolute ceiling: the baseline value IS the budget.
				c, ok := cur[gated].(float64)
				if !ok {
					fmt.Printf("FAIL %-24s %s missing (bounded by %s)\n", k, gated, field)
					failures++
				} else if c > b {
					fmt.Printf("FAIL %-24s %-22s %.0f > ceiling %.0f\n", k, gated, c, b)
					failures++
				}
				continue
			}
			c, ok := cur[field].(float64)
			if !ok {
				fmt.Printf("FAIL %-24s %s missing\n", k, field)
				failures++
				continue
			}
			switch {
			case isGatedUpper(field):
				if limit := b*(1+*tol) + absSlack; c > limit {
					fmt.Printf("FAIL %-24s %-22s %.3f > %.3f (baseline %.3f +%d%%)\n",
						k, field, c, limit, b, int(*tol*100))
					failures++
				}
			case field == "modeled_speedup_vs_1":
				if floor := b * (1 - *tol); c < floor && b > 0 {
					fmt.Printf("FAIL %-24s %-22s %.2f < %.2f (baseline %.2f -%d%%)\n",
						k, field, c, floor, b, int(*tol*100))
					failures++
				}
			}
		}
		if g, ok := cur["goroutines"].(float64); ok && cur["series"] == *speedupSeries {
			// Prefer the largest goroutine count; among equal goroutine
			// counts (the shardedkv series sweeps shards at a fixed mutator
			// count) prefer the largest shard count, so the floor applies to
			// the full-scale configuration.
			sh, _ := cur["shards"].(float64)
			if g > bestG || (g == bestG && sh > bestGShards) {
				bestG, bestGShards = g, sh
				bestSpeedup, _ = cur["modeled_speedup_vs_1"].(float64)
			}
		}
		if r, ok := cur["pause_reduction_vs_stw"].(float64); ok {
			pauseReduction, pauseRowSeen = r, true
		}
		if w, ok := cur["workers"].(float64); ok && cur["series"] == "parallel" && w > bestW {
			bestW = w
			bestParallel, _ = cur["modeled_parallel_speedup"].(float64)
		}
		if w, ok := cur["workers"].(float64); ok && cur["series"] == "recovery" && w > bestRW {
			bestRW = w
			bestRecovery, _ = cur["recovery_speedup_vs_serial"].(float64)
		}
	}
	if *minSpeedup > 0 {
		label := *speedupSeries
		if bestGShards > 0 {
			label = fmt.Sprintf("%s/s%d", label, int(bestGShards))
		}
		if bestG < 0 {
			fmt.Printf("FAIL no %s scaling rows found for -minspeedup\n", *speedupSeries)
			failures++
		} else if bestSpeedup < *minSpeedup {
			fmt.Printf("FAIL %s/%d modeled_speedup_vs_1 %.2f < required %.2f\n",
				label, int(bestG), bestSpeedup, *minSpeedup)
			failures++
		} else {
			fmt.Printf("ok   %s/%d modeled_speedup_vs_1 %.2f ≥ %.2f\n",
				label, int(bestG), bestSpeedup, *minSpeedup)
		}
	}
	if *minPauseReduction > 0 {
		if !pauseRowSeen {
			fmt.Printf("FAIL no pause_reduction_vs_stw row found for -minpausereduction\n")
			failures++
		} else if pauseReduction < *minPauseReduction {
			fmt.Printf("FAIL pause_reduction_vs_stw %.2f < required %.2f\n",
				pauseReduction, *minPauseReduction)
			failures++
		} else {
			fmt.Printf("ok   pause_reduction_vs_stw %.2f ≥ %.2f\n",
				pauseReduction, *minPauseReduction)
		}
	}
	if *minParallelSpeedup > 0 {
		if bestW < 0 {
			fmt.Printf("FAIL no parallel GC rows found for -minparallelspeedup\n")
			failures++
		} else if bestParallel < *minParallelSpeedup {
			fmt.Printf("FAIL parallel/%d modeled_parallel_speedup %.2f < required %.2f\n",
				int(bestW), bestParallel, *minParallelSpeedup)
			failures++
		} else {
			fmt.Printf("ok   parallel/%d modeled_parallel_speedup %.2f ≥ %.2f\n",
				int(bestW), bestParallel, *minParallelSpeedup)
		}
	}
	if *minRecoverySpeedup > 0 {
		if bestRW < 0 {
			fmt.Printf("FAIL no recovery rows found for -minrecoveryspeedup\n")
			failures++
		} else if bestRecovery < *minRecoverySpeedup {
			fmt.Printf("FAIL recovery/%d recovery_speedup_vs_serial %.2f < required %.2f\n",
				int(bestRW), bestRecovery, *minRecoverySpeedup)
			failures++
		} else {
			fmt.Printf("ok   recovery/%d recovery_speedup_vs_serial %.2f ≥ %.2f\n",
				int(bestRW), bestRecovery, *minRecoverySpeedup)
		}
	}
	if failures > 0 {
		fmt.Printf("benchgate: %d regression(s) vs %s\n", failures, *basePath)
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d rows within %.0f%% of %s\n", len(baseRows), *tol*100, *basePath)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
