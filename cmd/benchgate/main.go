// Command benchgate compares a fresh espresso-bench JSON dump against a
// committed baseline and fails (exit 1) on regressions — CI's enforcement
// arm for the device-cost contracts.
//
//	benchgate -baseline BENCH_fastpath.json -current out.json [-tol 0.10] [-minspeedup 3]
//
// Rows are matched by their identity fields (op, or series+goroutines).
// Gated fields are the deterministic device-cost metrics: dev_*_per_op,
// flushed_lines_per_op, fences_per_op, and modeled_ns_per_op — a current
// value may not exceed baseline×(1+tol) plus a small absolute slack.
// Wall-clock fields (ns_per_op, wall_ns_per_op) are reported but never
// gated: CI runners make them noise. modeled_speedup_vs_1 is gated as a
// lower bound — it may not drop below baseline×(1−tol), nor below
// -minspeedup when that flag is set (the parallel-allocation scaling
// claim).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

type row = map[string]any

func load(path string) ([]row, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rows []row
	if err := json.Unmarshal(b, &rows); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rows, nil
}

// key builds the row identity from its non-numeric fields plus the
// goroutine count, covering both the fastpath ({op}) and alloc
// ({series, goroutines}) schemas.
func key(r row) string {
	var parts []string
	for _, f := range []string{"op", "series", "goroutines"} {
		if v, ok := r[f]; ok {
			parts = append(parts, fmt.Sprint(v))
		}
	}
	return strings.Join(parts, "/")
}

func isGatedUpper(field string) bool {
	switch {
	case strings.HasPrefix(field, "dev_"),
		field == "flushed_lines_per_op",
		field == "fences_per_op",
		field == "modeled_ns_per_op":
		return true
	}
	return false
}

func main() {
	basePath := flag.String("baseline", "", "committed baseline JSON")
	curPath := flag.String("current", "", "freshly measured JSON")
	tol := flag.Float64("tol", 0.10, "relative tolerance")
	minSpeedup := flag.Float64("minspeedup", 0, "required modeled_speedup_vs_1 at the largest goroutine count (0 = off)")
	flag.Parse()
	if *basePath == "" || *curPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -baseline and -current are required")
		os.Exit(2)
	}
	baseRows, err := load(*basePath)
	if err != nil {
		fatal(err)
	}
	curRows, err := load(*curPath)
	if err != nil {
		fatal(err)
	}
	current := map[string]row{}
	for _, r := range curRows {
		current[key(r)] = r
	}

	const absSlack = 0.05 // forgives rounding on near-zero counts
	failures := 0
	bestG, bestSpeedup := -1.0, 0.0
	for _, base := range baseRows {
		k := key(base)
		cur, ok := current[k]
		if !ok {
			fmt.Printf("FAIL %-24s row missing from current run\n", k)
			failures++
			continue
		}
		for field, bv := range base {
			b, isNum := bv.(float64)
			if !isNum {
				continue
			}
			c, ok := cur[field].(float64)
			if !ok {
				fmt.Printf("FAIL %-24s %s missing\n", k, field)
				failures++
				continue
			}
			switch {
			case isGatedUpper(field):
				if limit := b*(1+*tol) + absSlack; c > limit {
					fmt.Printf("FAIL %-24s %-22s %.3f > %.3f (baseline %.3f +%d%%)\n",
						k, field, c, limit, b, int(*tol*100))
					failures++
				}
			case field == "modeled_speedup_vs_1":
				if floor := b * (1 - *tol); c < floor && b > 0 {
					fmt.Printf("FAIL %-24s %-22s %.2f < %.2f (baseline %.2f -%d%%)\n",
						k, field, c, floor, b, int(*tol*100))
					failures++
				}
			}
		}
		if g, ok := cur["goroutines"].(float64); ok && cur["series"] == "plab" && g > bestG {
			bestG = g
			bestSpeedup, _ = cur["modeled_speedup_vs_1"].(float64)
		}
	}
	if *minSpeedup > 0 {
		if bestG < 0 {
			fmt.Printf("FAIL no plab scaling rows found for -minspeedup\n")
			failures++
		} else if bestSpeedup < *minSpeedup {
			fmt.Printf("FAIL plab/%d modeled_speedup_vs_1 %.2f < required %.2f\n",
				int(bestG), bestSpeedup, *minSpeedup)
			failures++
		} else {
			fmt.Printf("ok   plab/%d modeled_speedup_vs_1 %.2f ≥ %.2f\n",
				int(bestG), bestSpeedup, *minSpeedup)
		}
	}
	if failures > 0 {
		fmt.Printf("benchgate: %d regression(s) vs %s\n", failures, *basePath)
		os.Exit(1)
	}
	fmt.Printf("benchgate: %d rows within %.0f%% of %s\n", len(baseRows), *tol*100, *basePath)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
