// Command espresso-bench regenerates the paper's tables and figures (see
// DESIGN.md §4 for the experiment index):
//
//	espresso-bench -exp fig4     JPA commit breakdown
//	espresso-bench -exp fig6     PCJ create breakdown
//	espresso-bench -exp fig15    PJH vs PCJ microbenchmarks
//	espresso-bench -exp fig16    JPAB throughput, H2-JPA vs H2-PJO
//	espresso-bench -exp fig17    BasicTest time breakdown
//	espresso-bench -exp fig18    heap loading time (UG vs zeroing)
//	espresso-bench -exp gcflush  recoverable-GC flush overhead (§6.4)
//	espresso-bench -exp fastpath resolved-handle / bulk-I/O / flush-coalescing costs
//	espresso-bench -exp alloc    PLAB allocation scaling curve
//	espresso-bench -exp gcpause  STW vs concurrent-marking GC pause times
//	espresso-bench -exp kv       durable lock-free index (pindex) scaling curve
//	espresso-bench -exp refstore write-combining ref-store barrier scaling curve
//	espresso-bench -exp shardedkv range-partitioned sharding (pshard): throughput + parallel recovery
//	espresso-bench -exp telemetry telemetry overhead contract: device ops off vs on + GC span timeline
//	espresso-bench -exp blackbox flight recorder: crash sweep at every flush boundary + recorder overhead
//	espresso-bench -exp faults   media-fault matrix: fault kind × metadata structure vs a DRAM oracle
//	espresso-bench -exp all      everything
//
// -scale N divides workload sizes by N for quick runs. -parallel N caps
// the alloc experiment's goroutine curve (instead of hardcoding
// GOMAXPROCS), sets the gcpause experiment's mutator count, and the
// shardedkv mutator count. -shards tops the shardedkv shard curve and
// -recoverykeys sizes its restart population. -json FILE writes the
// fastpath, alloc, gcpause, kv, refstore, shardedkv, or telemetry rows
// as JSON (the BENCH_*.json baselines that CI's bench gate compares
// against).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"espresso/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig4|fig6|fig15|fig16|fig17|fig18|gcflush|fastpath|alloc|gcpause|kv|refstore|shardedkv|telemetry|blackbox|faults|all")
	scale := flag.Int("scale", 1, "divide workload sizes by this factor")
	gcMB := flag.Int("gcmb", 256, "live megabytes for the gcflush experiment")
	parallel := flag.Int("parallel", 8, "top of the alloc/kv/refstore goroutine curves / gcpause and shardedkv mutator count")
	shards := flag.Int("shards", 4, "top of the shardedkv shard curve")
	recoveryKeys := flag.Int("recoverykeys", 1000000, "committed keys in the shardedkv restart series")
	jsonPath := flag.String("json", "", "write fastpath/alloc/gcpause/kv/refstore/shardedkv/telemetry/blackbox rows to this JSON file")
	snapPath := flag.String("snapshotjson", "", "write the telemetry experiment's folded metrics snapshot to this JSON file")
	timelinePath := flag.String("timelinejson", "", "write the blackbox experiment's decoded journal timeline to this JSON file")
	faultDir := flag.String("faultdir", "", "faults experiment: also dump golden + corrupted images here for heaptool scrub checks")
	flag.Parse()

	switch *exp {
	case "fastpath", "alloc", "gcpause", "kv", "refstore", "shardedkv", "telemetry", "blackbox", "faults":
	default:
		if *jsonPath != "" {
			fmt.Fprintln(os.Stderr, "espresso-bench: -json requires -exp fastpath, -exp alloc, -exp gcpause, -exp kv, -exp refstore, -exp shardedkv, -exp telemetry, or -exp blackbox")
			os.Exit(2)
		}
	}

	s := experiments.Scale(*scale)
	w := os.Stdout
	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Fprintf(w, "\n=== %s ===\n", name)
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
	}
	writeJSON := func(rows any) error {
		if *jsonPath == "" {
			return nil
		}
		b, err := json.MarshalIndent(rows, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", *jsonPath)
		return nil
	}

	run("fig4", func() error { return experiments.Fig4(w, s) })
	run("fig6", func() error { return experiments.Fig6(w, s) })
	run("fig15", func() error {
		rows, err := experiments.Fig15(s)
		if err != nil {
			return err
		}
		experiments.PrintFig15(w, rows)
		return nil
	})
	run("fig16", func() error {
		rows, err := experiments.Fig16(s)
		if err != nil {
			return err
		}
		experiments.PrintFig16(w, rows)
		return nil
	})
	run("fig17", func() error { return experiments.Fig17(w, s) })
	run("fig18", func() error {
		points, err := experiments.Fig18(s)
		if err != nil {
			return err
		}
		experiments.PrintFig18(w, points)
		return nil
	})
	run("gcflush", func() error {
		r, err := experiments.GCFlushCost(*gcMB << 20)
		if err != nil {
			return err
		}
		experiments.PrintGCFlush(w, r)
		return nil
	})
	run("fastpath", func() error {
		rows, err := experiments.Fastpath(s)
		if err != nil {
			return err
		}
		experiments.PrintFastpath(w, rows)
		if *exp == "fastpath" {
			return writeJSON(rows)
		}
		return nil
	})
	run("alloc", func() error {
		rows, err := experiments.AllocScaling(s, *parallel)
		if err != nil {
			return err
		}
		experiments.PrintAllocScaling(w, rows)
		if *exp == "alloc" {
			return writeJSON(rows)
		}
		return nil
	})
	run("gcpause", func() error {
		rows, err := experiments.GCPause(s, *parallel)
		if err != nil {
			return err
		}
		experiments.PrintGCPause(w, rows)
		if *exp == "gcpause" {
			return writeJSON(rows)
		}
		return nil
	})
	run("kv", func() error {
		rows, err := experiments.KVScaling(s, *parallel)
		if err != nil {
			return err
		}
		experiments.PrintKVScaling(w, rows)
		if *exp == "kv" {
			return writeJSON(rows)
		}
		return nil
	})
	run("refstore", func() error {
		rows, err := experiments.RefStoreScaling(s, *parallel)
		if err != nil {
			return err
		}
		experiments.PrintRefStoreScaling(w, rows)
		if *exp == "refstore" {
			return writeJSON(rows)
		}
		return nil
	})
	run("shardedkv", func() error {
		scaling, err := experiments.ShardedKVScaling(s, *shards, *parallel)
		if err != nil {
			return err
		}
		// The restart series is deliberately not divided by -scale: the
		// recovery-speedup claim is about a population large enough that
		// per-shard replay dominates fixed open cost (CI runs 1M keys).
		recovery, err := experiments.ShardedRecovery(*shards, *recoveryKeys, []int{1, 2, 4})
		if err != nil {
			return err
		}
		experiments.PrintShardedKV(w, scaling, recovery)
		if *exp == "shardedkv" {
			all := make([]any, 0, len(scaling)+len(recovery))
			for _, r := range scaling {
				all = append(all, r)
			}
			for _, r := range recovery {
				all = append(all, r)
			}
			return writeJSON(all)
		}
		return nil
	})
	run("telemetry", func() error {
		rows, report, err := experiments.TelemetryOverhead(s)
		if err != nil {
			return err
		}
		experiments.PrintTelemetry(w, rows, report)
		if *snapPath != "" {
			b, err := json.MarshalIndent(report.Snapshot, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(*snapPath, append(b, '\n'), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(w, "wrote %s\n", *snapPath)
		}
		if *exp == "telemetry" {
			return writeJSON(rows)
		}
		return nil
	})
	run("blackbox", func() error {
		rows, report, err := experiments.Blackbox(s)
		if err != nil {
			// The decoded timeline is the failure evidence — write it even
			// (especially) when the sweep or a gate fails.
			writeTimeline(*timelinePath, w, report)
			return err
		}
		experiments.PrintBlackbox(w, rows, report)
		writeTimeline(*timelinePath, w, report)
		if *exp == "blackbox" {
			return writeJSON(rows)
		}
		return nil
	})
	run("faults", func() error {
		rows, err := experiments.FaultsWithImages(s, *faultDir)
		if err != nil {
			return err
		}
		experiments.PrintFaults(w, rows)
		if *exp == "faults" {
			return writeJSON(rows)
		}
		return nil
	})
}

// writeTimeline dumps the blackbox experiment's decoded journal to path
// (no-op when unset). Failures here are secondary to the experiment's
// own result, so they are reported but not fatal.
func writeTimeline(path string, w io.Writer, report experiments.BlackboxReport) {
	if path == "" {
		return
	}
	b, err := json.MarshalIndent(report, "", "  ")
	if err == nil {
		err = os.WriteFile(path, append(b, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "espresso-bench: writing timeline: %v\n", err)
		return
	}
	fmt.Fprintf(w, "wrote %s\n", path)
}
